// Bucket-cost oracle correctness: every oracle's (representative, cost)
// is checked against brute force over possible worlds and candidate
// representatives, including the paper's section-3.1 worked example.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/abs_oracle.h"
#include "core/max_oracle.h"
#include "core/oracle_factory.h"
#include "core/point_error.h"
#include "core/sse_oracle.h"
#include "core/ssre_oracle.h"
#include "gen/generators.h"
#include "model/induced.h"
#include "model/worlds.h"
#include "test_util.h"

namespace probsyn {
namespace {

// Brute-force expected bucket error at a FIXED representative, from
// enumerated worlds: sum/max over items in [s,e] of E_W[err(g_i, v)].
double BruteBucketCost(const std::vector<PossibleWorld>& worlds, std::size_t s,
                       std::size_t e, double v, ErrorMetric metric, double c) {
  bool cumulative = IsCumulativeMetric(metric);
  double sum = 0.0, worst = 0.0;
  for (std::size_t i = s; i <= e; ++i) {
    double err = testing::EnumeratedItemError(worlds, i, v, metric, c);
    sum += err;
    worst = std::max(worst, err);
  }
  return cumulative ? sum : worst;
}

// Dense candidate scan for a near-optimal representative.
double BruteBestCost(const std::vector<PossibleWorld>& worlds, std::size_t s,
                     std::size_t e, ErrorMetric metric, double c,
                     double v_max) {
  double best = std::numeric_limits<double>::infinity();
  const int kGrid = 800;
  for (int g = 0; g <= kGrid; ++g) {
    double v = v_max * g / kGrid;
    best = std::min(best, BruteBucketCost(worlds, s, e, v, metric, c));
  }
  return best;
}

TEST(SseOracle, PaperWorkedExampleWorldMean) {
  // Section 3.1: bucket spanning the full example domain has world-mean
  // SSE cost 252/144 - (1/3)(136/48) = 29/36.
  TuplePdfInput input = testing::PaperExampleTuplePdf();
  SseTupleWorldMeanOracle oracle(input);
  BucketCost cost = oracle.Cost(0, 2);
  EXPECT_NEAR(cost.cost, 29.0 / 36, 1e-12);
  // "The same value can be obtained by computing the expected sample
  // variance over all possible worlds."
  auto worlds = EnumerateWorlds(input);
  ASSERT_TRUE(worlds.ok());
  Histogram one_bucket({{0, 2, 0.0}});
  EXPECT_NEAR(testing::EnumeratedWorldMeanSse(worlds.value(), one_bucket),
              29.0 / 36, 1e-12);
}

TEST(SseOracle, PaperExampleIntermediateMoments) {
  // E[(sum_i g_i)^2] over the bucket {0,1,2} must equal 136/48.
  TuplePdfInput input = testing::PaperExampleTuplePdf();
  auto worlds = EnumerateWorlds(input);
  ASSERT_TRUE(worlds.ok());
  double e_square = ExpectationOverWorlds(
      worlds.value(), [](const std::vector<double>& f) {
        double s = f[0] + f[1] + f[2];
        return s * s;
      });
  EXPECT_NEAR(e_square, 136.0 / 48, 1e-12);
}

TEST(SseOracle, FixedRepresentativeMatchesEnumerationOnPaperExample) {
  // With a representative fixed across worlds, the optimal bucket cost of
  // [0,2] is sum E[g^2] - (sum E[g])^2 / 3 = 252/144 - 3*(19/36)^2 = 395/432.
  TuplePdfInput input = testing::PaperExampleTuplePdf();
  SseMomentOracle oracle =
      SseMomentOracle::FromTuplePdf(input, SseVariant::kFixedRepresentative);
  BucketCost cost = oracle.Cost(0, 2);
  EXPECT_NEAR(cost.cost, 395.0 / 432, 1e-12);
  EXPECT_NEAR(cost.representative, 19.0 / 36, 1e-12);

  auto worlds = EnumerateWorlds(input);
  ASSERT_TRUE(worlds.ok());
  EXPECT_NEAR(BruteBucketCost(worlds.value(), 0, 2, cost.representative,
                              ErrorMetric::kSse, 1.0),
              cost.cost, 1e-12);
  // And no grid candidate does better.
  EXPECT_LE(cost.cost, BruteBestCost(worlds.value(), 0, 2, ErrorMetric::kSse,
                                     1.0, 3.0) +
                           1e-9);
}

TEST(SseOracle, WorldMeanSubBucketsOnPaperExample) {
  // Cross-check every sub-bucket of the worked example against exhaustive
  // enumeration of E[sample variance].
  TuplePdfInput input = testing::PaperExampleTuplePdf();
  SseTupleWorldMeanOracle oracle(input);
  auto worlds = EnumerateWorlds(input);
  ASSERT_TRUE(worlds.ok());
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t e = s; e < 3; ++e) {
      // Directly: expected within-bucket variance * n_b for bucket [s,e].
      double enumerated = 0.0;
      for (const PossibleWorld& w : worlds.value()) {
        double nb = static_cast<double>(e - s + 1);
        double mean = 0.0;
        for (std::size_t i = s; i <= e; ++i) mean += w.frequencies[i];
        mean /= nb;
        for (std::size_t i = s; i <= e; ++i) {
          double d = w.frequencies[i] - mean;
          enumerated += w.probability * d * d;
        }
      }
      EXPECT_NEAR(oracle.Cost(s, e).cost, enumerated, 1e-10)
          << "bucket [" << s << "," << e << "]";
    }
  }
}

TEST(SseOracle, SweepAgreesWithRandomAccess) {
  TuplePdfInput input = GenerateRandomTuplePdf(
      {.domain_size = 12, .num_tuples = 20, .max_alternatives = 4, .seed = 5});
  SseTupleWorldMeanOracle oracle(input);
  for (std::size_t e = 0; e < 12; ++e) {
    auto sweep = oracle.StartSweep(e);
    for (std::size_t s = e;; --s) {
      BucketCost from_sweep = sweep->Extend();
      BucketCost direct = oracle.Cost(s, e);
      EXPECT_NEAR(from_sweep.cost, direct.cost, 1e-9)
          << "bucket [" << s << "," << e << "]";
      EXPECT_NEAR(from_sweep.representative, direct.representative, 1e-12);
      if (s == 0) break;
    }
  }
}

TEST(SseOracle, ValuePdfWorldMeanMatchesEnumeration) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ValuePdfInput input = GenerateRandomValuePdf(
        {.domain_size = 6, .max_support = 3, .max_value = 4, .seed = seed});
    auto worlds = EnumerateWorlds(input);
    ASSERT_TRUE(worlds.ok());
    SseMomentOracle oracle =
        SseMomentOracle::FromValuePdf(input, SseVariant::kWorldMean);
    for (std::size_t s = 0; s < 6; ++s) {
      for (std::size_t e = s; e < 6; ++e) {
        double enumerated = 0.0;
        for (const PossibleWorld& w : worlds.value()) {
          double nb = static_cast<double>(e - s + 1);
          double mean = 0.0;
          for (std::size_t i = s; i <= e; ++i) mean += w.frequencies[i];
          mean /= nb;
          for (std::size_t i = s; i <= e; ++i) {
            double d = w.frequencies[i] - mean;
            enumerated += w.probability * d * d;
          }
        }
        EXPECT_NEAR(oracle.Cost(s, e).cost, enumerated, 1e-9)
            << "seed " << seed << " [" << s << "," << e << "]";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Parameterized brute-force sweep across cumulative metrics on random
// value-pdf inputs: the oracle's cost must (a) equal the enumerated cost at
// its own representative, and (b) be no worse than any dense-grid candidate.

struct OracleCase {
  ErrorMetric metric;
  double c;
  std::uint64_t seed;
};

class CumulativeOracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(CumulativeOracleTest, MatchesBruteForce) {
  const OracleCase& param = GetParam();
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 7, .max_support = 3, .max_value = 5,
       .seed = param.seed});
  auto worlds = EnumerateWorlds(input);
  ASSERT_TRUE(worlds.ok());

  SynopsisOptions options;
  options.metric = param.metric;
  options.sanity_c = param.c;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok()) << bundle.status();

  for (std::size_t s = 0; s < input.domain_size(); ++s) {
    for (std::size_t e = s; e < input.domain_size(); ++e) {
      BucketCost got = bundle->oracle->Cost(s, e);
      double at_rep = BruteBucketCost(worlds.value(), s, e,
                                      got.representative, param.metric,
                                      param.c);
      EXPECT_NEAR(got.cost, at_rep, 1e-8)
          << ErrorMetricName(param.metric) << " [" << s << "," << e
          << "] rep=" << got.representative;
      double best = BruteBestCost(worlds.value(), s, e, param.metric, param.c,
                                  6.0);
      EXPECT_LE(got.cost, best + 1e-6)
          << ErrorMetricName(param.metric) << " [" << s << "," << e << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndSeeds, CumulativeOracleTest,
    ::testing::Values(OracleCase{ErrorMetric::kSse, 1.0, 1},
                      OracleCase{ErrorMetric::kSse, 1.0, 2},
                      OracleCase{ErrorMetric::kSsre, 0.5, 1},
                      OracleCase{ErrorMetric::kSsre, 1.0, 3},
                      OracleCase{ErrorMetric::kSae, 1.0, 1},
                      OracleCase{ErrorMetric::kSae, 1.0, 4},
                      OracleCase{ErrorMetric::kSare, 0.5, 2},
                      OracleCase{ErrorMetric::kSare, 1.0, 5},
                      OracleCase{ErrorMetric::kMae, 1.0, 1},
                      OracleCase{ErrorMetric::kMae, 1.0, 6},
                      OracleCase{ErrorMetric::kMare, 0.5, 3},
                      OracleCase{ErrorMetric::kMare, 1.0, 7}),
    [](const ::testing::TestParamInfo<OracleCase>& info) {
      return std::string(ErrorMetricName(info.param.metric)) + "_seed" +
             std::to_string(info.param.seed);
    });

TEST(AbsOracle, GridCostIsConvexAndSearchFindsMinimum) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 10, .max_support = 4, .max_value = 8, .seed = 21});
  AbsCumulativeOracle oracle(input, /*relative=*/false, 1.0);
  const auto& grid = oracle.grid();
  for (std::size_t s = 0; s < 10; s += 3) {
    for (std::size_t e = s; e < 10; e += 2) {
      BucketCost got = oracle.Cost(s, e);
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t l = 0; l < grid.size(); ++l) {
        best = std::min(best, oracle.CostAtGridIndex(s, e, l));
      }
      EXPECT_NEAR(got.cost, best, 1e-10) << "[" << s << "," << e << "]";
    }
  }
}

TEST(MaxOracle, ContinuousOptimumBeatsGridWhenEnvelopeCrossesBetweenValues) {
  // Two deterministic items with frequencies 0 and 3: MAE envelope
  // max(|v|, |3 - v|) is minimized at v = 1.5, strictly between grid
  // values {0, 3} — exercising the min-of-max-of-lines refinement.
  ValuePdfInput input(
      {ValuePdf::PointMass(0.0), ValuePdf::PointMass(3.0)});
  auto tables = std::make_shared<const PointErrorTables>(input, 1.0);
  MaxErrorOracle oracle(tables, /*relative=*/false);
  BucketCost got = oracle.Cost(0, 1);
  EXPECT_NEAR(got.representative, 1.5, 1e-9);
  EXPECT_NEAR(got.cost, 1.5, 1e-9);
}

TEST(MaxOracle, EnvelopeAtMatchesPointErrors) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 5, .max_support = 3, .max_value = 4, .seed = 31});
  auto tables = std::make_shared<const PointErrorTables>(input, 0.5);
  MaxErrorOracle oracle(tables, /*relative=*/true);
  for (double v : {0.0, 0.5, 1.0, 2.5, 4.0}) {
    double expect = 0.0;
    for (std::size_t i = 1; i <= 3; ++i) {
      expect = std::max(expect, tables->AbsoluteRelativeError(i, v));
    }
    EXPECT_NEAR(oracle.EnvelopeAt(1, 3, v), expect, 1e-12);
  }
}

TEST(OracleFactory, TupleInputsRouteThroughInducedPdf) {
  TuplePdfInput input = testing::PaperExampleTuplePdf();
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  auto induced = InduceValuePdf(input);
  ASSERT_TRUE(induced.ok());
  auto value_bundle = MakeBucketOracle(induced.value(), options);
  ASSERT_TRUE(value_bundle.ok());
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t e = s; e < 3; ++e) {
      EXPECT_NEAR(bundle->oracle->Cost(s, e).cost,
                  value_bundle->oracle->Cost(s, e).cost, 1e-12);
    }
  }
}

TEST(OracleFactory, RejectsEmptyDomain) {
  ValuePdfInput empty;
  SynopsisOptions options;
  EXPECT_FALSE(MakeBucketOracle(empty, options).ok());
}

TEST(OracleFactory, MaxMetricsUseMaxCombiner) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  SynopsisOptions options;
  options.metric = ErrorMetric::kMae;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle->combiner, DpCombiner::kMax);
  options.metric = ErrorMetric::kSse;
  auto sum_bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(sum_bundle.ok());
  EXPECT_EQ(sum_bundle->combiner, DpCombiner::kSum);
}

}  // namespace
}  // namespace probsyn
