// Unrestricted (free-coefficient-value) wavelet DP — the extension the
// paper sketches in section 4.2's final paragraph.

#include "core/wavelet_unrestricted.h"

#include <limits>

#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "core/wavelet.h"
#include "core/wavelet_dp.h"
#include "gen/generators.h"
#include "test_util.h"

namespace probsyn {
namespace {

struct UnrestrictedCase {
  ErrorMetric metric;
  double c;
  std::size_t domain;
  std::size_t budget;
  std::uint64_t seed;
};

class UnrestrictedWaveletTest
    : public ::testing::TestWithParam<UnrestrictedCase> {};

// The DP is internally exact: its reported cost must equal the true
// expected error of the synopsis it returns.
TEST_P(UnrestrictedWaveletTest, ReportedCostMatchesEvaluation) {
  const UnrestrictedCase& param = GetParam();
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = param.domain, .max_support = 3, .max_value = 5,
       .seed = param.seed});
  SynopsisOptions options;
  options.metric = param.metric;
  options.sanity_c = param.c;

  auto result = BuildUnrestrictedWaveletDp(input, param.budget, options,
                                           {.grid_points = 21});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(result->synopsis.num_coefficients(), param.budget);
  EXPECT_TRUE(result->synopsis.Validate().ok());

  auto evaluated = EvaluateWavelet(input, result->synopsis, options);
  ASSERT_TRUE(evaluated.ok());
  EXPECT_NEAR(result->cost, *evaluated, 1e-8)
      << ErrorMetricName(param.metric);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, UnrestrictedWaveletTest,
    ::testing::Values(
        UnrestrictedCase{ErrorMetric::kSae, 1.0, 8, 2, 1},
        UnrestrictedCase{ErrorMetric::kSae, 1.0, 16, 4, 2},
        UnrestrictedCase{ErrorMetric::kSare, 0.5, 8, 3, 3},
        UnrestrictedCase{ErrorMetric::kSare, 1.0, 16, 5, 4},
        UnrestrictedCase{ErrorMetric::kMae, 1.0, 8, 2, 5},
        UnrestrictedCase{ErrorMetric::kMare, 0.5, 8, 3, 6},
        UnrestrictedCase{ErrorMetric::kSse, 1.0, 16, 4, 7},
        UnrestrictedCase{ErrorMetric::kSsre, 1.0, 8, 2, 8},
        UnrestrictedCase{ErrorMetric::kSae, 1.0, 11, 3, 9}),  // padded
    [](const ::testing::TestParamInfo<UnrestrictedCase>& info) {
      return std::string(ErrorMetricName(info.param.metric)) + "_n" +
             std::to_string(info.param.domain) + "_B" +
             std::to_string(info.param.budget) + "_seed" +
             std::to_string(info.param.seed);
    });

TEST(UnrestrictedWavelet, FullBudgetOnGridValuedDataIsExact) {
  // Deterministic integer data whose values all lie on the DP grid: with
  // budget n the DP can reconstruct exactly (cost 0), since any grid-valued
  // leaf vector is reachable by the symmetric-offset transitions.
  std::vector<double> freqs{3, 1, 4, 1, 5, 2, 6, 2};
  ValuePdfInput input;
  {
    std::vector<ValuePdf> items;
    for (double f : freqs) items.push_back(ValuePdf::PointMass(f));
    input = ValuePdfInput(std::move(items));
  }
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  // Grid step divides 1: range [0-pad, 6+pad] with padding 0 and 25 points
  // -> step 0.25, integers representable.
  auto result = BuildUnrestrictedWaveletDp(
      input, 8, options, {.grid_points = 25, .range_padding = 0.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->cost, 0.0, 1e-9);
  std::vector<double> back = result->synopsis.ToFrequencyVector();
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    EXPECT_NEAR(back[i], freqs[i], 1e-9);
  }
}

TEST(UnrestrictedWavelet, BeatsRestrictedWhenExpectedValuesAreBadEstimates) {
  // Items with mass {0: 0.9, 10: 0.1}: the expected frequency is 1, but
  // the SAE-optimal constant estimate is 0 (cost 1.0 per item vs 1.8).
  // The restricted DP is stuck with mu-valued coefficients; the
  // unrestricted DP picks the better value.
  std::vector<ValuePdf> items;
  for (int i = 0; i < 8; ++i) {
    auto pdf = ValuePdf::Create({{10.0, 0.1}});
    ASSERT_TRUE(pdf.ok());
    items.push_back(std::move(pdf).value());
  }
  ValuePdfInput input(std::move(items));
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;

  auto restricted = BuildRestrictedWaveletDp(input, 1, options);
  auto unrestricted = BuildUnrestrictedWaveletDp(input, 1, options,
                                                 {.grid_points = 41});
  ASSERT_TRUE(restricted.ok() && unrestricted.ok());
  // Restricted with B=1 keeps c0 = mu0 (estimate 1 everywhere, cost 14.4)
  // or nothing (estimate 0, cost 8); unrestricted can do no worse than the
  // best of those and here they coincide at 8.
  EXPECT_LE(unrestricted->cost, restricted->cost + 1e-9);
  EXPECT_NEAR(unrestricted->cost, 8.0, 1e-9);

  // With nonzero mass worth approximating, unrestricted strictly wins:
  // shift the distribution to {2: 0.5, 4: 0.5} where mu-based values are
  // fine but a MEDIAN-seeking metric prefers different levels per half.
  std::vector<ValuePdf> skew;
  for (int i = 0; i < 4; ++i) {
    auto lo = ValuePdf::Create({{0.0, 0.8}, {10.0, 0.2}});
    auto hi = ValuePdf::Create({{10.0, 0.8}, {0.0, 0.2}});
    ASSERT_TRUE(lo.ok() && hi.ok());
    skew.push_back(std::move(lo).value());
    skew.push_back(std::move(hi).value());
  }
  ValuePdfInput skew_input(std::move(skew));
  auto r2 = BuildRestrictedWaveletDp(skew_input, 2, options);
  auto u2 = BuildUnrestrictedWaveletDp(skew_input, 2, options,
                                       {.grid_points = 41});
  ASSERT_TRUE(r2.ok() && u2.ok());
  EXPECT_LE(u2->cost, r2->cost + 1e-9);
}

TEST(UnrestrictedWavelet, MonotoneInBudget) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 16, .max_support = 3, .max_value = 6, .seed = 12});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSare;
  options.sanity_c = 1.0;
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t budget = 0; budget <= 8; ++budget) {
    auto result = BuildUnrestrictedWaveletDp(input, budget, options,
                                             {.grid_points = 17});
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->cost, prev + 1e-9) << "budget " << budget;
    prev = result->cost;
  }
}

TEST(UnrestrictedWavelet, FinerGridsNeverHurt) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 16, .max_support = 3, .max_value = 6, .seed = 21});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  double coarse = 0.0, fine = 0.0;
  {
    auto r = BuildUnrestrictedWaveletDp(input, 4, options, {.grid_points = 9});
    ASSERT_TRUE(r.ok());
    coarse = r->cost;
  }
  {
    // 9 -> 17 points halves the step over the same range, so every coarse
    // policy remains representable.
    auto r = BuildUnrestrictedWaveletDp(input, 4, options, {.grid_points = 17});
    ASSERT_TRUE(r.ok());
    fine = r->cost;
  }
  EXPECT_LE(fine, coarse + 1e-9);
}

TEST(UnrestrictedWavelet, SingletonDomain) {
  auto pdf = ValuePdf::Create({{4.0, 0.5}, {6.0, 0.5}});
  ASSERT_TRUE(pdf.ok());
  ValuePdfInput input({pdf.value()});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto result = BuildUnrestrictedWaveletDp(input, 1, options,
                                           {.grid_points = 41});
  ASSERT_TRUE(result.ok());
  // Any estimate in [4, 6] has expected abs error 1.
  EXPECT_NEAR(result->cost, 1.0, 1e-9);
}

TEST(UnrestrictedWavelet, RejectsBadOptions) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  EXPECT_FALSE(
      BuildUnrestrictedWaveletDp(input, 2, options, {.grid_points = 2}).ok());
  EXPECT_FALSE(BuildUnrestrictedWaveletDp(input, 2, options,
                                          {.grid_points = 9,
                                           .range_padding = -0.5})
                   .ok());
}

TEST(UnrestrictedWavelet, ZeroBudget) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto result = BuildUnrestrictedWaveletDp(input, 0, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->synopsis.num_coefficients(), 0u);
  double expect = 0.0;
  for (double m : input.ExpectedFrequencies()) expect += m;  // E|g - 0|
  EXPECT_NEAR(result->cost, expect, 1e-9);
}

}  // namespace
}  // namespace probsyn
