// End-to-end smoke checks: build each synopsis type on small inputs.

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/builders.h"
#include "core/evaluate.h"
#include "core/wavelet_dp.h"
#include "gen/generators.h"
#include "model/induced.h"

namespace probsyn {
namespace {

TEST(Smoke, HistogramOnRandomValuePdf) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 32, .seed = 3});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  auto hist = BuildOptimalHistogram(input, options, 4);
  ASSERT_TRUE(hist.ok()) << hist.status();
  EXPECT_TRUE(hist->Validate(32).ok());
  EXPECT_LE(hist->num_buckets(), 4u);
}

TEST(Smoke, WaveletOnMovieLinkage) {
  BasicModelInput data = GenerateMovieLinkage({.domain_size = 64, .seed = 5});
  auto tuple_pdf = data.ToTuplePdf();
  ASSERT_TRUE(tuple_pdf.ok());
  auto synopsis = BuildSseOptimalWavelet(tuple_pdf.value(), 8);
  ASSERT_TRUE(synopsis.ok()) << synopsis.status();
  EXPECT_EQ(synopsis->num_coefficients(), 8u);
}

TEST(Smoke, RestrictedWaveletDp) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 16, .seed = 9});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto result = BuildRestrictedWaveletDp(input, 4, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(result->synopsis.num_coefficients(), 4u);
  EXPECT_GE(result->cost, 0.0);
}

}  // namespace
}  // namespace probsyn
