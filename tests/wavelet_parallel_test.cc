// Parallel restricted-wavelet arena fill (core/wavelet_dp.cc): the level
// sweeps fan out across a thread pool in disjoint arena spans with
// identical per-state computation, so the solve must be bit-identical to
// the sequential fill at EVERY thread count and SIMD path — costs, kept
// coefficients (indices and values), and traceback ties. CI runs this
// binary under TSan (scoped with thread_pool_test) to keep the span
// disjointness honest, and twice under native/force-scalar dispatch like
// the rest of the suite.

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/dp_kernels.h"
#include "core/evaluate.h"
#include "core/wavelet_dp.h"
#include "engine/synopsis_engine.h"
#include "gen/generators.h"
#include "util/thread_pool.h"
#include "test_util.h"

namespace probsyn {
namespace {

using testing::ScopedSimdPath;

// Thread counts the determinism sweep pins (pool workers = count - 1; the
// calling thread is a lane).
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

struct Baseline {
  double cost;
  std::vector<WaveletCoefficient> coefficients;
};

Baseline SequentialBaseline(const ValuePdfInput& input, std::size_t budget,
                            const SynopsisOptions& options) {
  ScopedSimdPath forced(SimdPath::kScalar);
  auto result = BuildRestrictedWaveletDp(input, budget, options);
  EXPECT_TRUE(result.ok()) << result.status();
  // A failed solve (e.g. an injected resource fault) must not dereference
  // the errored StatusOr: return an empty baseline the comparisons then
  // fail against cleanly.
  if (!result.ok()) return {0.0, {}};
  return {result->cost, result->synopsis.coefficients()};
}

void ExpectBitIdentical(const Baseline& want, const WaveletDpResult& got,
                        const char* label) {
  EXPECT_EQ(want.cost, got.cost) << label;
  ASSERT_EQ(want.coefficients.size(), got.synopsis.coefficients().size())
      << label;
  for (std::size_t i = 0; i < want.coefficients.size(); ++i) {
    EXPECT_EQ(want.coefficients[i].index,
              got.synopsis.coefficients()[i].index)
        << label << " coefficient " << i;
    EXPECT_EQ(want.coefficients[i].value,
              got.synopsis.coefficients()[i].value)
        << label << " coefficient " << i;
  }
}

struct ParallelCase {
  ErrorMetric metric;
  std::size_t domain;
  std::size_t budget;
  std::uint64_t seed;
};

class WaveletParallelDeterminismTest
    : public ::testing::TestWithParam<ParallelCase> {};

// The acceptance sweep: thread counts {1, 2, 8} x every SIMD path the
// machine supports, all compared against the scalar sequential solve
// bit-for-bit. kMae exercises the max-combiner bisection, kSae the
// chunked sum reduction — both split kernels under parallel dispatch.
TEST_P(WaveletParallelDeterminismTest, BitIdenticalAcrossThreadsAndSimd) {
  const ParallelCase& param = GetParam();
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = param.domain, .max_support = 3, .max_value = 6,
       .seed = param.seed});
  SynopsisOptions options;
  options.metric = param.metric;

  const Baseline want = SequentialBaseline(input, param.budget, options);

  for (std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads - 1);
    for (SimdPath path : testing::SupportedSimdPaths()) {
      ScopedSimdPath forced(path);
      auto result =
          BuildRestrictedWaveletDp(input, param.budget, options, 2048,
                                   WaveletSplitKernel::kAuto,
                                   /*workspace=*/nullptr, &pool);
      ASSERT_TRUE(result.ok()) << result.status();
      const std::string label = std::string("threads=") +
                                std::to_string(threads) + " simd=" +
                                SimdPathName(path);
      EXPECT_EQ(result->lanes, threads) << label;
      ExpectBitIdentical(want, *result, label.c_str());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, WaveletParallelDeterminismTest,
    ::testing::Values(ParallelCase{ErrorMetric::kMae, 256, 32, 1},
                      ParallelCase{ErrorMetric::kSae, 256, 32, 2},
                      ParallelCase{ErrorMetric::kSare, 128, 24, 3},
                      ParallelCase{ErrorMetric::kMare, 128, 16, 4},
                      ParallelCase{ErrorMetric::kSae, 300, 24, 5}),
    [](const ::testing::TestParamInfo<ParallelCase>& info) {
      return std::string(ErrorMetricName(info.param.metric)) + "_n" +
             std::to_string(info.param.domain) + "_B" +
             std::to_string(info.param.budget) + "_seed" +
             std::to_string(info.param.seed);
    });

// The reference split kernel must be parallel-safe too (its per-state scan
// is the parity baseline the kernel tests diff against).
TEST(WaveletParallel, ReferenceKernelMatchesUnderThreads) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 200, .max_support = 3, .max_value = 6, .seed = 77});
  SynopsisOptions options;
  options.metric = ErrorMetric::kMae;
  auto sequential = BuildRestrictedWaveletDp(input, 24, options, 2048,
                                             WaveletSplitKernel::kReference);
  ASSERT_TRUE(sequential.ok());
  ThreadPool pool(7);
  auto parallel = BuildRestrictedWaveletDp(input, 24, options, 2048,
                                           WaveletSplitKernel::kReference,
                                           nullptr, &pool);
  ASSERT_TRUE(parallel.ok());
  ExpectBitIdentical({sequential->cost, sequential->synopsis.coefficients()},
                     *parallel, "reference kernel");
}

// A leased workspace arena serves parallel solves without extra growth:
// the fill writes the same spans from more threads, nothing more.
TEST(WaveletParallel, WorkspaceReuseStaysZeroAllocAcrossThreadCounts) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 128, .max_support = 3, .max_value = 6, .seed = 9});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;

  DpWorkspacePool workspaces;
  DpWorkspacePool::Lease lease = workspaces.Acquire();
  auto warmup = BuildRestrictedWaveletDp(input, 16, options, 2048,
                                         WaveletSplitKernel::kAuto,
                                         lease.get());
  ASSERT_TRUE(warmup.ok());
  const std::size_t grows = lease.get()->wavelet_arena().grow_events;

  for (std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads - 1);
    auto again = BuildRestrictedWaveletDp(input, 16, options, 2048,
                                          WaveletSplitKernel::kAuto,
                                          lease.get(), &pool);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->cost, warmup->cost);
    EXPECT_EQ(lease.get()->wavelet_arena().grow_events, grows)
        << "threads=" << threads << " grew the arena";
  }
}

// The engine plans the pool into the restricted-DP route and surfaces the
// lane count as par= in the solver string.
TEST(WaveletParallel, EngineRecordsParInSolverString) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 300, .max_support = 3, .max_value = 6, .seed = 21});
  SynopsisRequest request;
  request.kind = SynopsisKind::kWavelet;
  request.wavelet_method = WaveletMethod::kRestrictedDp;
  request.budget = 16;
  request.options.metric = ErrorMetric::kMae;

  SynopsisEngine sequential({.parallelism = 1});
  auto seq = sequential.Build(input, request);
  ASSERT_TRUE(seq.ok()) << seq.status();
  EXPECT_NE(seq->solver.find("par=1"), std::string::npos) << seq->solver;

  SynopsisEngine parallel({.parallelism = 4});
  auto par = parallel.Build(input, request);
  ASSERT_TRUE(par.ok()) << par.status();
  EXPECT_NE(par->solver.find("par=4"), std::string::npos) << par->solver;
  EXPECT_EQ(seq->cost, par->cost);

  // Domains below the engine's parallel cutoff stay sequential.
  ValuePdfInput tiny = GenerateRandomValuePdf(
      {.domain_size = 64, .max_support = 3, .max_value = 6, .seed = 22});
  auto small = parallel.Build(tiny, request);
  ASSERT_TRUE(small.ok()) << small.status();
  EXPECT_NE(small->solver.find("par=1"), std::string::npos) << small->solver;
}

}  // namespace
}  // namespace probsyn
