#include "io/pdata.h"

#include <sstream>

#include <gtest/gtest.h>

#include "core/builders.h"
#include "core/wavelet.h"
#include "gen/generators.h"
#include "test_util.h"

namespace probsyn {
namespace {

TEST(Pdata, ValuePdfRoundTrip) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 20, .max_support = 4, .max_value = 9, .seed = 2});
  std::stringstream stream;
  ASSERT_TRUE(WriteValuePdf(stream, input).ok());
  auto back = ReadValuePdf(stream);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->domain_size(), input.domain_size());
  for (std::size_t i = 0; i < input.domain_size(); ++i) {
    EXPECT_EQ(back->item(i), input.item(i)) << "item " << i;
  }
}

TEST(Pdata, TuplePdfRoundTrip) {
  TuplePdfInput input = GenerateRandomTuplePdf(
      {.domain_size = 12, .num_tuples = 25, .max_alternatives = 4, .seed = 3});
  std::stringstream stream;
  ASSERT_TRUE(WriteTuplePdf(stream, input).ok());
  auto back = ReadTuplePdf(stream);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_tuples(), input.num_tuples());
  EXPECT_EQ(back->domain_size(), input.domain_size());
  for (std::size_t t = 0; t < input.num_tuples(); ++t) {
    EXPECT_EQ(back->tuples()[t].alternatives(),
              input.tuples()[t].alternatives());
  }
}

TEST(Pdata, BasicModelRoundTrip) {
  BasicModelInput input = GenerateMovieLinkage({.domain_size = 40, .seed = 4});
  std::stringstream stream;
  ASSERT_TRUE(WriteBasicModel(stream, input).ok());
  auto back = ReadBasicModel(stream);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->tuples(), input.tuples());
  EXPECT_EQ(back->domain_size(), input.domain_size());
}

TEST(Pdata, CommentsAndBlankLinesIgnored) {
  std::stringstream stream;
  stream << "# leading comment\n\n"
         << "probsyn-pdata v1 basic\n"
         << "n 3 m 1  # inline comment\n"
         << "\n"
         << "t 1 0.5\n";
  auto back = ReadBasicModel(stream);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->num_tuples(), 1u);
  EXPECT_EQ(back->tuples()[0].item, 1u);
}

TEST(Pdata, RejectsWrongKind) {
  std::stringstream stream;
  stream << "probsyn-pdata v1 basic\nn 2 m 0\n";
  auto back = ReadValuePdf(stream);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST(Pdata, RejectsBadMagicAndVersion) {
  std::stringstream bad_magic("nonsense v1 basic\n");
  EXPECT_FALSE(ReadBasicModel(bad_magic).ok());
  std::stringstream bad_version("probsyn-pdata v9 basic\n");
  EXPECT_FALSE(ReadBasicModel(bad_version).ok());
}

TEST(Pdata, RejectsTruncatedStreams) {
  std::stringstream stream;
  stream << "probsyn-pdata v1 tuple_pdf\nn 4 m 3\ntuple 1 0 0.5\n";
  auto back = ReadTuplePdf(stream);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kIOError);
}

TEST(Pdata, RejectsDuplicateItems) {
  std::stringstream stream;
  stream << "probsyn-pdata v1 value_pdf\nn 2\n"
         << "item 0 1 1 1\n"
         << "item 0 1 2 1\n";
  EXPECT_FALSE(ReadValuePdf(stream).ok());
}

TEST(Pdata, RejectsInvalidProbabilities) {
  std::stringstream stream;
  stream << "probsyn-pdata v1 basic\nn 2 m 1\nt 0 1.7\n";
  EXPECT_FALSE(ReadBasicModel(stream).ok());
}

TEST(Pdata, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/probsyn_io_test.pdata";
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 8, .seed = 5});
  ASSERT_TRUE(SaveValuePdf(path, input).ok());
  auto back = LoadValuePdf(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->domain_size(), 8u);
  EXPECT_FALSE(LoadValuePdf(path + ".missing").ok());
}

TEST(Pdata, HistogramCsv) {
  Histogram h({{0, 3, 1.25}, {4, 7, 0.5}});
  std::stringstream stream;
  ASSERT_TRUE(WriteHistogramCsv(stream, h).ok());
  std::string text = stream.str();
  EXPECT_NE(text.find("bucket,start,end,representative"), std::string::npos);
  EXPECT_NE(text.find("0,0,3,1.25"), std::string::npos);
  EXPECT_NE(text.find("1,4,7,0.5"), std::string::npos);
}

TEST(Pdata, DetectKind) {
  std::stringstream value("probsyn-pdata v1 value_pdf\nn 0\n");
  auto kind = DetectPdataKind(value);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, "value_pdf");

  std::stringstream basic("# c\nprobsyn-pdata v1 basic\nn 1 m 0\n");
  kind = DetectPdataKind(basic);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, "basic");

  std::stringstream junk("something else\n");
  EXPECT_FALSE(DetectPdataKind(junk).ok());
  std::stringstream unknown("probsyn-pdata v1 mystery\n");
  EXPECT_FALSE(DetectPdataKind(unknown).ok());
}

TEST(Pdata, HistogramCsvRoundTrip) {
  Histogram h({{0, 3, 1.25}, {4, 7, -0.5}, {8, 10, 3.75}});
  std::stringstream stream;
  ASSERT_TRUE(WriteHistogramCsv(stream, h).ok());
  auto back = ReadHistogramCsv(stream);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, h);
}

TEST(Pdata, HistogramCsvRejectsMalformedInput) {
  std::stringstream no_header("1,2,3\n");
  EXPECT_FALSE(ReadHistogramCsv(no_header).ok());

  std::stringstream bad_row("bucket,start,end,representative\n0,0,x,1\n");
  EXPECT_FALSE(ReadHistogramCsv(bad_row).ok());

  std::stringstream out_of_order(
      "bucket,start,end,representative\n1,0,3,1.0\n");
  EXPECT_FALSE(ReadHistogramCsv(out_of_order).ok());

  std::stringstream gap(
      "bucket,start,end,representative\n0,0,3,1.0\n1,5,7,2.0\n");
  EXPECT_FALSE(ReadHistogramCsv(gap).ok());

  std::stringstream empty("bucket,start,end,representative\n");
  EXPECT_FALSE(ReadHistogramCsv(empty).ok());
}

TEST(Pdata, WaveletCsv) {
  WaveletSynopsis synopsis(4, 4, {{0, 2.0}, {2, -1.0}});
  std::stringstream stream;
  ASSERT_TRUE(WriteWaveletCsv(stream, synopsis).ok());
  std::string text = stream.str();
  EXPECT_NE(text.find("coefficient_index,value"), std::string::npos);
  EXPECT_NE(text.find("0,2"), std::string::npos);
  EXPECT_NE(text.find("2,-1"), std::string::npos);
}

}  // namespace
}  // namespace probsyn
