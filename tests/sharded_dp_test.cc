// Sharded construction (core/sharded_dp.h): plan/resolve arithmetic, the
// accuracy contract (cost never below the unsharded optimum, measured
// error envelope pinned), determinism across thread counts and SIMD paths
// for a fixed shard plan, and the engine's sharded planner route.

#include "core/sharded_dp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "core/dp_kernels.h"
#include "core/histogram_dp.h"
#include "core/oracle_factory.h"
#include "engine/synopsis_engine.h"
#include "gen/generators.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace probsyn {
namespace {

using probsyn::testing::ScopedSimdPath;

// The measured error envelope of the differential sweep below: across 120
// seeded cases (three metrics x domain/budget/shard grids) the worst
// sharded-vs-optimal cost ratio observed is 1.275; the pinned bound keeps
// headroom so distribution drift fails loudly, not flakily. Quoted in
// docs/architecture.md — update both if the sweep changes.
constexpr double kSweepRatioBound = 1.5;

SynopsisOptions OptionsFor(ErrorMetric metric) {
  SynopsisOptions options;
  options.metric = metric;
  options.sanity_c = 0.5;
  return options;
}

double UnshardedOptimum(const ValuePdfInput& input, std::size_t budget,
                        const SynopsisOptions& options) {
  auto bundle = MakeBucketOracle(input, options);
  EXPECT_TRUE(bundle.ok()) << bundle.status();
  // Don't dereference an errored StatusOr (e.g. under an injected fault):
  // the NaN makes every downstream comparison fail cleanly instead.
  if (!bundle.ok()) return std::numeric_limits<double>::quiet_NaN();
  HistogramDpResult dp =
      SolveHistogramDp(*bundle->oracle, budget, bundle->combiner);
  return dp.OptimalCost(budget);
}

// --- Plan / resolve arithmetic. ------------------------------------------

TEST(ShardedPlanTest, PlanShardsPartitionsEvenly) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    for (std::size_t s : {1u, 2u, 3u, 7u}) {
      if (s > n) continue;
      auto plan = PlanShards(n, s);
      ASSERT_EQ(plan.size(), s);
      EXPECT_EQ(plan.front().begin, 0u);
      EXPECT_EQ(plan.back().end, n);
      std::size_t min_w = n, max_w = 0;
      for (std::size_t k = 0; k < s; ++k) {
        ASSERT_LT(plan[k].begin, plan[k].end) << "empty shard";
        if (k > 0) EXPECT_EQ(plan[k].begin, plan[k - 1].end);
        min_w = std::min(min_w, plan[k].end - plan[k].begin);
        max_w = std::max(max_w, plan[k].end - plan[k].begin);
      }
      EXPECT_LE(max_w - min_w, 1u) << "n=" << n << " s=" << s;
    }
  }
}

TEST(ShardedPlanTest, ResolveShardCountClamps) {
  // Explicit requests clamp to [1, min(n, budget)].
  EXPECT_EQ(ResolveShardCount(1000, 64, 16), 16u);
  EXPECT_EQ(ResolveShardCount(1000, 8, 16), 8u);    // budget-limited
  EXPECT_EQ(ResolveShardCount(4, 64, 16), 4u);      // domain-limited
  EXPECT_EQ(ResolveShardCount(1000, 64, 0), 2u);    // auto floor
  EXPECT_EQ(ResolveShardCount(1u << 20, 4096, 0), 64u);  // auto ceiling
  EXPECT_EQ(ResolveShardCount(1, 1, 0), 1u);
}

TEST(ShardedPlanTest, ResolveMaxShardBudgetBounds) {
  // Lower bound keeps full allocations feasible; upper bound is what one
  // shard can get when every other takes a single bucket.
  EXPECT_EQ(ResolveMaxShardBudget(64, 16, 1), 4u);   // clamped up to ceil(B/S)
  EXPECT_EQ(ResolveMaxShardBudget(64, 16, 1000), 49u);  // clamped to B-S+1
  EXPECT_EQ(ResolveMaxShardBudget(64, 16, 8), 8u);
  EXPECT_EQ(ResolveMaxShardBudget(64, 64, 0), 1u);   // B == S
  const std::size_t auto_cap = ResolveMaxShardBudget(64, 16, 0);
  EXPECT_GE(auto_cap, 4u);
  EXPECT_LE(auto_cap, 49u);
}

// --- Accuracy contract: seeded differential sweep. -----------------------

TEST(ShardedDifferentialTest, SweepNeverBeatsOptimumAndStaysInEnvelope) {
  const ErrorMetric metrics[] = {ErrorMetric::kSse, ErrorMetric::kSae,
                                 ErrorMetric::kMae};
  double worst_ratio = 1.0;
  std::size_t cases = 0;
  for (ErrorMetric metric : metrics) {
    for (std::size_t n : {64u, 96u, 128u, 160u, 256u}) {
      for (std::size_t budget : {4u, 8u, 16u}) {
        for (std::size_t shards : {2u, 4u, 8u}) {
          if (shards > budget) continue;
          const std::uint64_t seed = 1000 + cases;
          ValuePdfInput input = GenerateRandomValuePdf(
              {.domain_size = n, .max_support = 4, .max_value = 8,
               .seed = seed});
          SynopsisOptions options = OptionsFor(metric);
          const double optimum = UnshardedOptimum(input, budget, options);

          ShardedDpOptions sharded;
          sharded.shards = shards;
          auto result =
              BuildShardedHistogram(input, budget, options, sharded);
          ASSERT_TRUE(result.ok()) << result.status();
          EXPECT_EQ(result->shards, shards);
          EXPECT_LE(result->histogram.num_buckets(), budget);
          ASSERT_TRUE(result->histogram.Validate(n).ok());

          // Never below the optimum (tiny slack: the sharded cost sums
          // per-shard totals in a different order than the DP's folds).
          EXPECT_GE(result->cost, optimum * (1.0 - 1e-9))
              << ErrorMetricName(metric) << " n=" << n << " B=" << budget
              << " S=" << shards;
          if (optimum > 0.0) {
            const double ratio = result->cost / optimum;
            worst_ratio = std::max(worst_ratio, ratio);
            EXPECT_LE(ratio, kSweepRatioBound)
                << ErrorMetricName(metric) << " n=" << n << " B=" << budget
                << " S=" << shards << " seed=" << seed;
          }
          ++cases;
        }
      }
    }
  }
  EXPECT_GE(cases, 100u) << "sweep shrank below its documented size";
  RecordProperty("worst_ratio", std::to_string(worst_ratio));
}

TEST(ShardedDifferentialTest, SingleShardMatchesUnshardedBitwise) {
  for (ErrorMetric metric : {ErrorMetric::kSse, ErrorMetric::kMae}) {
    ValuePdfInput input =
        GenerateRandomValuePdf({.domain_size = 120, .seed = 5});
    SynopsisOptions options = OptionsFor(metric);
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok()) << bundle.status();
    HistogramDpResult dp =
        SolveHistogramDp(*bundle->oracle, 10, bundle->combiner);

    ShardedDpOptions sharded;
    sharded.shards = 1;
    auto result = BuildShardedHistogram(input, 10, options, sharded);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->cost, dp.OptimalCost(10));
    EXPECT_TRUE(result->histogram == dp.ExtractHistogram(10));
  }
}

TEST(ShardedDifferentialTest, BudgetEqualsShardsGivesOneBucketEach) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 64, .seed = 9});
  ShardedDpOptions sharded;
  sharded.shards = 8;
  auto result =
      BuildShardedHistogram(input, 8, OptionsFor(ErrorMetric::kSse), sharded);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->max_shard_budget, 1u);
  EXPECT_EQ(result->histogram.num_buckets(), 8u);
  for (std::size_t b : result->shard_budgets) EXPECT_EQ(b, 1u);
}

TEST(ShardedDifferentialTest, WorkloadWeightsSliceWithTheShards) {
  const std::size_t n = 96;
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = n, .seed = 17});
  SynopsisOptions options = OptionsFor(ErrorMetric::kSse);
  options.sse_variant = SseVariant::kFixedRepresentative;  // workload-capable
  options.workload.assign(n, 1.0);
  for (std::size_t i = 0; i < n; i += 3) options.workload[i] = 4.0;

  const double optimum = UnshardedOptimum(input, 8, options);
  ShardedDpOptions sharded;
  sharded.shards = 4;
  auto result = BuildShardedHistogram(input, 8, options, sharded);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->cost, optimum * (1.0 - 1e-9));

  SynopsisOptions bad = options;
  bad.workload.resize(n - 1);
  EXPECT_FALSE(BuildShardedHistogram(input, 8, bad, sharded).ok());
}

// --- Determinism: fixed plan, any thread count, any SIMD path. -----------

TEST(ShardedDeterminismTest, BitIdenticalAcrossThreadsAndSimd) {
  for (ShardSolver solver : {ShardSolver::kExact, ShardSolver::kApprox}) {
    ValuePdfInput input =
        GenerateRandomValuePdf({.domain_size = 200, .seed = 23});
    SynopsisOptions options = OptionsFor(ErrorMetric::kSse);

    Histogram reference;
    double reference_cost = 0.0;
    bool have_reference = false;
    for (SimdPath path : probsyn::testing::SupportedSimdPaths()) {
      ScopedSimdPath forced(path);
      for (std::size_t workers : {0u, 1u, 7u}) {
        ThreadPool pool(workers);
        ShardedDpOptions sharded;
        sharded.shards = 4;
        sharded.solver = solver;
        sharded.epsilon = 0.1;
        sharded.pool = workers > 0 ? &pool : nullptr;
        auto result = BuildShardedHistogram(input, 12, options, sharded);
        ASSERT_TRUE(result.ok()) << result.status();
        if (!have_reference) {
          reference = result->histogram;
          reference_cost = result->cost;
          have_reference = true;
          continue;
        }
        EXPECT_EQ(result->cost, reference_cost)
            << "workers=" << workers << " simd=" << SimdPathName(path);
        EXPECT_TRUE(result->histogram == reference)
            << "workers=" << workers << " simd=" << SimdPathName(path);
      }
    }
  }
}

// --- The approximate curve the merge consumes. ---------------------------

TEST(ShardedApproxCurveTest, CurveIsMonotoneAndEndsAtTheDpValue) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 150, .seed = 3});
  auto bundle = MakeBucketOracle(input, OptionsFor(ErrorMetric::kSse));
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  auto approx = SolveApproxHistogramDp(*bundle->oracle, 12, 0.1);
  ASSERT_TRUE(approx.ok()) << approx.status();
  ASSERT_EQ(approx->cost_curve.size(), 12u);
  for (std::size_t b = 1; b < approx->cost_curve.size(); ++b) {
    EXPECT_LE(approx->cost_curve[b], approx->cost_curve[b - 1]) << "b=" << b;
  }
  // The curve's tail is the DP's own value of the returned histogram; the
  // reported cost re-sums the extracted buckets through the oracle.
  EXPECT_NEAR(approx->cost_curve.back(), approx->cost,
              1e-9 * std::max(1.0, approx->cost));
}

// --- Engine route. -------------------------------------------------------

TEST(ShardedEngineRouteTest, ExplicitShardingRecordsPlanInSolverString) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 512, .seed = 31});
  SynopsisEngine engine({.parallelism = 4, .min_parallel_domain = 1});
  SynopsisRequest request;
  request.budget = 16;
  request.options = OptionsFor(ErrorMetric::kSse);
  request.sharding.mode = RequestSharding::Mode::kOn;
  request.sharding.shards = 8;

  auto result = engine.Build(input, request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->solver.find("histogram/sharded-dp["), std::string::npos)
      << result->solver;
  EXPECT_NE(result->solver.find("shards=8"), std::string::npos)
      << result->solver;
  EXPECT_NE(result->solver.find("par=4"), std::string::npos) << result->solver;

  // Engine output == the direct build (determinism across lane counts).
  ShardedDpOptions sharded;
  sharded.shards = 8;
  auto direct = BuildShardedHistogram(input, 16, request.options, sharded);
  ASSERT_TRUE(direct.ok()) << direct.status();
  EXPECT_EQ(result->cost, direct->cost);
  EXPECT_TRUE(result->histogram == direct->histogram);

  request.method = HistogramMethod::kApprox;
  result = engine.Build(input, request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->solver.find("histogram/sharded-approx(eps=0.1)["),
            std::string::npos)
      << result->solver;
  EXPECT_GT(result->oracle_evaluations, 0u);
}

TEST(ShardedEngineRouteTest, AutoShardsOnlyLargeApproxRequests) {
  SynopsisEngine::Options engine_options;
  engine_options.parallelism = 2;
  engine_options.min_parallel_domain = 1;
  engine_options.shard_auto_domain = 256;  // test-sized threshold
  SynopsisEngine engine(engine_options);

  SynopsisRequest request;
  request.budget = 12;
  request.method = HistogramMethod::kApprox;
  request.options = OptionsFor(ErrorMetric::kSse);

  ValuePdfInput large = GenerateRandomValuePdf({.domain_size = 300, .seed = 7});
  auto result = engine.Build(large, request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->solver.find("sharded-approx"), std::string::npos)
      << result->solver;

  ValuePdfInput small = GenerateRandomValuePdf({.domain_size = 128, .seed = 7});
  result = engine.Build(small, request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->solver.find("approx-dp"), std::string::npos)
      << result->solver;

  // kOff pins the unsharded route even above the threshold; kOptimal never
  // auto-shards (exact means exact).
  request.sharding.mode = RequestSharding::Mode::kOff;
  result = engine.Build(large, request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->solver.find("approx-dp"), std::string::npos)
      << result->solver;

  request.sharding.mode = RequestSharding::Mode::kAuto;
  request.method = HistogramMethod::kOptimal;
  result = engine.Build(large, request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->solver.find("exact-dp"), std::string::npos)
      << result->solver;
}

TEST(ShardedEngineRouteTest, ExplicitShardingRejectsUnsupportedRoutes) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 64, .seed = 1});
  SynopsisEngine engine;
  SynopsisRequest request;
  request.budget = 8;
  request.sharding.mode = RequestSharding::Mode::kOn;

  request.method = HistogramMethod::kStreaming;
  request.options = OptionsFor(ErrorMetric::kSse);
  EXPECT_FALSE(engine.Build(input, request).ok());

  request.method = HistogramMethod::kEquiDepth;
  EXPECT_FALSE(engine.Build(input, request).ok());

  request.method = HistogramMethod::kOptimal;
  request.kind = SynopsisKind::kWavelet;
  EXPECT_FALSE(engine.Build(input, request).ok());
}

TEST(ShardedEngineRouteTest, TupleInputShardsThroughInducedPdfs) {
  TuplePdfInput input = GenerateRandomTuplePdf(
      {.domain_size = 80, .num_tuples = 120, .seed = 19});
  SynopsisEngine engine;
  SynopsisRequest request;
  request.budget = 8;
  request.options = OptionsFor(ErrorMetric::kSse);
  request.options.sse_variant = SseVariant::kFixedRepresentative;
  request.sharding.mode = RequestSharding::Mode::kOn;
  request.sharding.shards = 4;

  auto result = engine.Build(input, request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->solver.find("sharded-dp"), std::string::npos)
      << result->solver;

  // World-mean SSE's joint oracle cannot shard: explicit kOn reports
  // Unimplemented, kAuto silently keeps the unsharded route.
  request.options.sse_variant = SseVariant::kWorldMean;
  auto world_mean = engine.Build(input, request);
  ASSERT_FALSE(world_mean.ok());
  EXPECT_EQ(world_mean.status().code(), StatusCode::kUnimplemented);

  request.sharding.mode = RequestSharding::Mode::kAuto;
  SynopsisEngine::Options tiny_threshold;
  tiny_threshold.shard_auto_domain = 16;
  SynopsisEngine auto_engine(tiny_threshold);
  request.method = HistogramMethod::kApprox;
  auto fallback = auto_engine.Build(input, request);
  ASSERT_TRUE(fallback.ok()) << fallback.status();
  EXPECT_NE(fallback->solver.find("approx-dp"), std::string::npos)
      << fallback->solver;
}

TEST(ShardedEngineRouteTest, BatchMixesShardedAndGroupedRequests) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 256, .seed = 41});
  SynopsisEngine engine({.parallelism = 2, .min_parallel_domain = 1});

  SynopsisRequest plain;
  plain.budget = 8;
  plain.options = OptionsFor(ErrorMetric::kSse);
  SynopsisRequest shard = plain;
  shard.sharding.mode = RequestSharding::Mode::kOn;
  shard.sharding.shards = 4;
  std::vector<SynopsisRequest> requests = {plain, shard, plain};

  auto results = engine.BuildBatch(input, requests);
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_NE((*results)[0].solver.find("exact-dp"), std::string::npos);
  EXPECT_NE((*results)[1].solver.find("sharded-dp"), std::string::npos);
  EXPECT_TRUE((*results)[0].histogram == (*results)[2].histogram);
  EXPECT_GE((*results)[1].cost, (*results)[0].cost * (1.0 - 1e-9));
}

}  // namespace
}  // namespace probsyn
