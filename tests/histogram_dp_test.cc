// DP optimality: the dynamic program must match exhaustive search over all
// bucketizations, for every metric and model, and its traceback must
// reproduce the reported optimal cost.

#include <limits>

#include <gtest/gtest.h>

#include "core/builders.h"
#include "core/evaluate.h"
#include "core/histogram_dp.h"
#include "core/oracle_factory.h"
#include "gen/generators.h"
#include "model/induced.h"
#include "test_util.h"

namespace probsyn {
namespace {

// Exhaustive optimum over all partitions into at most `max_buckets`
// buckets, using oracle costs per bucket.
double BruteForceOptimal(const BucketCostOracle& oracle,
                         std::size_t max_buckets, DpCombiner combiner) {
  std::size_t n = oracle.domain_size();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t b = 1; b <= std::min(max_buckets, n); ++b) {
    ForEachBucketization(n, b, [&](const std::vector<std::size_t>& ends) {
      double total = combiner == DpCombiner::kSum ? 0.0 : 0.0;
      std::size_t start = 0;
      for (std::size_t end : ends) {
        double cost = oracle.Cost(start, end).cost;
        total = combiner == DpCombiner::kSum ? total + cost
                                             : std::max(total, cost);
        start = end + 1;
      }
      best = std::min(best, total);
    });
  }
  return best;
}

struct DpCase {
  ErrorMetric metric;
  double c;
  SseVariant variant;
  std::uint64_t seed;
};

class DpOptimalityTest : public ::testing::TestWithParam<DpCase> {};

TEST_P(DpOptimalityTest, MatchesExhaustiveSearchOnValuePdf) {
  const DpCase& param = GetParam();
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 9, .max_support = 3, .max_value = 6,
       .seed = param.seed});
  SynopsisOptions options;
  options.metric = param.metric;
  options.sanity_c = param.c;
  options.sse_variant = param.variant;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok()) << bundle.status();

  HistogramDpResult dp = SolveHistogramDp(*bundle->oracle, 4, bundle->combiner);
  for (std::size_t b = 1; b <= 4; ++b) {
    double brute = BruteForceOptimal(*bundle->oracle, b, bundle->combiner);
    EXPECT_NEAR(dp.OptimalCost(b), brute, 1e-9)
        << ErrorMetricName(param.metric) << " B=" << b;

    Histogram h = dp.ExtractHistogram(b);
    ASSERT_TRUE(h.Validate(input.domain_size()).ok());
    EXPECT_LE(h.num_buckets(), b);
    // The traced histogram's bucket costs re-sum to the optimum.
    double recomputed = bundle->combiner == DpCombiner::kSum ? 0.0 : 0.0;
    for (const HistogramBucket& bucket : h.buckets()) {
      double cost = bundle->oracle->Cost(bucket.start, bucket.end).cost;
      recomputed = bundle->combiner == DpCombiner::kSum
                       ? recomputed + cost
                       : std::max(recomputed, cost);
    }
    EXPECT_NEAR(recomputed, dp.OptimalCost(b), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndSeeds, DpOptimalityTest,
    ::testing::Values(
        DpCase{ErrorMetric::kSse, 1.0, SseVariant::kWorldMean, 1},
        DpCase{ErrorMetric::kSse, 1.0, SseVariant::kFixedRepresentative, 2},
        DpCase{ErrorMetric::kSsre, 0.5, SseVariant::kWorldMean, 3},
        DpCase{ErrorMetric::kSsre, 1.0, SseVariant::kWorldMean, 4},
        DpCase{ErrorMetric::kSae, 1.0, SseVariant::kWorldMean, 5},
        DpCase{ErrorMetric::kSare, 0.5, SseVariant::kWorldMean, 6},
        DpCase{ErrorMetric::kMae, 1.0, SseVariant::kWorldMean, 7},
        DpCase{ErrorMetric::kMare, 0.5, SseVariant::kWorldMean, 8}),
    [](const ::testing::TestParamInfo<DpCase>& info) {
      return std::string(ErrorMetricName(info.param.metric)) + "_seed" +
             std::to_string(info.param.seed);
    });

TEST(HistogramDp, ExactTupleSseMatchesExhaustiveSearch) {
  TuplePdfInput input = GenerateRandomTuplePdf(
      {.domain_size = 8, .num_tuples = 10, .max_alternatives = 3, .seed = 9});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kWorldMean;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  HistogramDpResult dp = SolveHistogramDp(*bundle->oracle, 3, bundle->combiner);
  for (std::size_t b = 1; b <= 3; ++b) {
    EXPECT_NEAR(dp.OptimalCost(b),
                BruteForceOptimal(*bundle->oracle, b, bundle->combiner), 1e-9)
        << "B=" << b;
  }
}

TEST(HistogramDp, CostCurveIsMonotoneInBuckets) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 24, .max_support = 4, .max_value = 8, .seed = 12});
  for (ErrorMetric metric : {ErrorMetric::kSse, ErrorMetric::kSae,
                             ErrorMetric::kMare}) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 1.0;
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok());
    HistogramDpResult dp =
        SolveHistogramDp(*bundle->oracle, 24, bundle->combiner);
    for (std::size_t b = 2; b <= 24; ++b) {
      EXPECT_LE(dp.OptimalCost(b), dp.OptimalCost(b - 1) + 1e-12)
          << ErrorMetricName(metric) << " B=" << b;
    }
  }
}

TEST(HistogramDp, BudgetsBeyondDomainSizeSaturate) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 6, .seed = 2});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  HistogramDpResult dp = SolveHistogramDp(*bundle->oracle, 50, bundle->combiner);
  EXPECT_NEAR(dp.OptimalCost(6), dp.OptimalCost(50), 0.0);
  Histogram h = dp.ExtractHistogram(50);
  EXPECT_LE(h.num_buckets(), 6u);
}

TEST(HistogramDp, SingleItemDomain) {
  ValuePdfInput input({ValuePdf::PointMass(3.0)});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  HistogramDpResult dp = SolveHistogramDp(*bundle->oracle, 3, bundle->combiner);
  EXPECT_NEAR(dp.OptimalCost(1), 0.0, 1e-12);
  Histogram h = dp.ExtractHistogram(1);
  ASSERT_EQ(h.num_buckets(), 1u);
  EXPECT_DOUBLE_EQ(h.buckets()[0].representative, 3.0);
}

TEST(HistogramDp, ExtractOnEmptyDomainNormalizesToEmptyHistogram) {
  // A never-solved (default-constructed) result has n = 0; extraction must
  // return the empty histogram — the unique partition of an empty domain,
  // and the one Histogram Validate(0) accepts — not walk unfilled tables
  // or abort. Regression: this used to CHECK-fail on n_ > 0.
  HistogramDpResult unsolved;
  Histogram h = unsolved.ExtractHistogram(3);
  EXPECT_EQ(h.num_buckets(), 0u);
  EXPECT_EQ(h.domain_size(), 0u);
  EXPECT_TRUE(h.Validate(0).ok());
}

TEST(HistogramDp, DeterministicDataWithEnoughBucketsHasZeroError) {
  // n distinct deterministic frequencies, B = n: every item its own bucket.
  std::vector<double> freqs{5, 1, 4, 2, 8, 3};
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  auto builder = HistogramBuilder::CreateDeterministic(freqs, options, 6);
  ASSERT_TRUE(builder.ok());
  EXPECT_NEAR(builder->OptimalCost(6), 0.0, 1e-12);
  // And with 1 bucket, the classic SSE formula: sum (g - mean)^2.
  double mean = (5 + 1 + 4 + 2 + 8 + 3) / 6.0;
  double expect = 0.0;
  for (double g : freqs) expect += (g - mean) * (g - mean);
  EXPECT_NEAR(builder->OptimalCost(1), expect, 1e-9);
}

TEST(HistogramDp, UncertainDataKeepsResidualErrorAtFullBudget) {
  // Paper section 5.1: "unlike in the deterministic case, a histogram with
  // B = n buckets does not have zero error".
  ValuePdfInput input = testing::PaperExampleValuePdf();
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto builder = HistogramBuilder::Create(input, options, 3);
  ASSERT_TRUE(builder.ok());
  EXPECT_GT(builder->OptimalCost(3), 0.01);
}

TEST(HistogramDp, ExtractedRepresentativesAreBucketOptimal) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 10, .max_support = 3, .max_value = 5, .seed = 33});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  HistogramDpResult dp = SolveHistogramDp(*bundle->oracle, 4, bundle->combiner);
  Histogram h = dp.ExtractHistogram(4);
  for (const HistogramBucket& b : h.buckets()) {
    EXPECT_DOUBLE_EQ(b.representative,
                     bundle->oracle->Cost(b.start, b.end).representative);
  }
}

// ---------------------------------------------------------------------------
// Approximate DP (paper section 3.5).

class ApproxDpTest : public ::testing::TestWithParam<double> {};

TEST_P(ApproxDpTest, WithinFactorOfExactOptimum) {
  const double epsilon = GetParam();
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 60, .max_support = 4, .max_value = 9, .seed = 77});
  for (ErrorMetric metric :
       {ErrorMetric::kSse, ErrorMetric::kSsre, ErrorMetric::kSae}) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 1.0;
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok());
    const std::size_t kBuckets = 6;
    HistogramDpResult exact =
        SolveHistogramDp(*bundle->oracle, kBuckets, bundle->combiner);
    auto approx = SolveApproxHistogramDp(*bundle->oracle, kBuckets, epsilon);
    ASSERT_TRUE(approx.ok()) << approx.status();
    EXPECT_TRUE(approx->histogram.Validate(input.domain_size()).ok());
    EXPECT_LE(approx->histogram.num_buckets(), kBuckets);
    EXPECT_GE(approx->cost, exact.OptimalCost(kBuckets) - 1e-9);
    EXPECT_LE(approx->cost,
              (1.0 + epsilon) * exact.OptimalCost(kBuckets) + 1e-9)
        << ErrorMetricName(metric) << " eps=" << epsilon;
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, ApproxDpTest,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 1.0));

TEST(ApproxDp, UsesFewerOracleEvaluationsThanExactOnLargeInputs) {
  // The approximation's per-position candidate count is O((B/eps) log R)
  // independent of n, so it overtakes the exact DP's n^2/2 bucket
  // evaluations once n is large relative to B^2/eps.
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 2000, .max_support = 3, .max_value = 6, .seed = 13});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  auto approx = SolveApproxHistogramDp(*bundle->oracle, 4, 1.0);
  ASSERT_TRUE(approx.ok());
  // Exact DP would evaluate n^2/2 = 2M bucket costs; require a 4x margin.
  EXPECT_LT(approx->oracle_evaluations, 500000u);
}

TEST(ApproxDp, RejectsMaxMetrics) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  SynopsisOptions options;
  options.metric = ErrorMetric::kMae;
  auto result = BuildApproxHistogram(input, options, 2, 0.1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(ApproxDp, RejectsBadEpsilon) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  EXPECT_FALSE(BuildApproxHistogram(input, options, 2, 0.0).ok());
  EXPECT_FALSE(BuildApproxHistogram(input, options, 2, -1.0).ok());
}

}  // namespace
}  // namespace probsyn
