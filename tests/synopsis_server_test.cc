// Serving-tier tests: the mmap store (serve/synopsis_store.h) and the query
// server (serve/synopsis_server.h). The centerpiece is a 200-case seeded
// differential sweep (8 blocks x 25 seeds, the dp_property_test.cc harness
// shape) asserting that every query served from a persisted-and-reopened
// store is BITWISE-equal to the same query on the construction-side object —
// build -> encode -> write -> mmap -> decode -> serve loses nothing, across
// SIMD dispatch paths. Around it: store unit tests (lookup, duplicates,
// corruption, zero-copy views) and concurrent-reader determinism with four
// unsynchronized threads (run under TSan in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/synopsis_engine.h"
#include "gen/generators.h"
#include "test_util.h"
#include "util/fault_injection.h"

namespace probsyn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::uint64_t Bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// Deterministic probe ranges covering singletons, prefixes, suffixes, and
// seed-dependent interior spans.
std::vector<std::pair<std::size_t, std::size_t>> ProbeRanges(
    std::size_t n, std::uint64_t seed) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges = {
      {0, 0}, {n - 1, n - 1}, {0, n - 1}, {0, n / 2}, {n / 2, n - 1}};
  for (int k = 1; k <= 3; ++k) {
    std::size_t a = (seed * 31 + static_cast<std::uint64_t>(k) * 97) % n;
    std::size_t b = a + (seed * 13 + static_cast<std::uint64_t>(k) * 41) %
                            (n - a);
    ranges.emplace_back(a, b);
  }
  return ranges;
}

// --- The differential sweep: serve == construct, bit for bit. ---------------

class SynopsisServeDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynopsisServeDifferentialTest, ServedQueriesMatchConstructionBitwise) {
  constexpr std::uint64_t kSeedsPerBlock = 25;
  SynopsisEngine engine({.parallelism = 1});
  for (std::uint64_t k = 0; k < kSeedsPerBlock; ++k) {
    const std::uint64_t seed = GetParam() * kSeedsPerBlock + k + 1;
    const std::size_t n = 40 + (seed * 7919) % 160;
    const std::size_t buckets = 1 + (seed * 104729) % 12;
    const std::size_t coeffs = 1 + (seed * 7907) % 16;
    ValuePdfInput input = GenerateRandomValuePdf(
        {.domain_size = n, .max_support = 4, .max_value = 9, .seed = seed});

    SynopsisRequest hist_request;
    hist_request.kind = SynopsisKind::kHistogram;
    hist_request.budget = buckets;
    SynopsisRequest wave_request;
    wave_request.kind = SynopsisKind::kWavelet;
    wave_request.budget = coeffs;
    auto hist = engine.Build(input, hist_request);
    auto wave = engine.Build(input, wave_request);
    ASSERT_TRUE(hist.ok() && wave.ok()) << "seed " << seed;

    const std::string path =
        TempPath("diff_" + std::to_string(seed) + ".synstore");
    std::vector<NamedSynopsis> named;
    named.push_back({"h", *hist});
    named.push_back({"w", *wave});
    ASSERT_TRUE(engine.Store(path, named).ok()) << "seed " << seed;
    auto server = engine.Serve(path);
    ASSERT_TRUE(server.ok()) << "seed " << seed << ": "
                             << server.status().ToString();

    const ServedSynopsis* sh = server->Find("h");
    const ServedSynopsis* sw = server->Find("w");
    ASSERT_NE(sh, nullptr);
    ASSERT_NE(sw, nullptr);
    EXPECT_EQ(sh->domain_size(), n);
    EXPECT_EQ(sw->domain_size(), n);

    // Point estimates: every item, both kinds, bit for bit.
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(Bits(hist->histogram.Estimate(i)), Bits(sh->PointEstimate(i)))
          << "seed " << seed << " i=" << i;
      EXPECT_EQ(Bits(wave->wavelet.Estimate(i)), Bits(sw->PointEstimate(i)))
          << "seed " << seed << " i=" << i;
    }

    // Range sums and averages, bit for bit against the construction-side
    // arithmetic (same loop order, same Kahan accumulation).
    for (auto [a, b] : ProbeRanges(n, seed)) {
      const double want_h = hist->histogram.EstimateRangeSum(a, b);
      const double want_w = wave->wavelet.EstimateRangeSum(a, b);
      EXPECT_EQ(Bits(want_h), Bits(sh->RangeSum(a, b)))
          << "seed " << seed << " [" << a << "," << b << "]";
      EXPECT_EQ(Bits(want_w), Bits(sw->RangeSum(a, b)))
          << "seed " << seed << " [" << a << "," << b << "]";
      const double count = static_cast<double>(b - a + 1);
      EXPECT_EQ(Bits(want_h / count), Bits(sh->RangeAverage(a, b)))
          << "seed " << seed;
      auto via_status = server->RangeAverage("w", a, b);
      ASSERT_TRUE(via_status.ok());
      EXPECT_EQ(Bits(want_w / count), Bits(*via_status)) << "seed " << seed;
    }

    // Top-k coefficients: |value| descending, index ascending on ties,
    // checked against an independent ranking of the retained set.
    std::vector<WaveletCoefficient> expected = wave->wavelet.coefficients();
    std::stable_sort(expected.begin(), expected.end(),
                     [](const WaveletCoefficient& x,
                        const WaveletCoefficient& y) {
                       double fx = std::fabs(x.value);
                       double fy = std::fabs(y.value);
                       if (fx != fy) return fx > fy;
                       return x.index < y.index;
                     });
    for (std::size_t top_k : {std::size_t{1}, coeffs / 2 + 1, coeffs + 5}) {
      std::vector<WaveletCoefficient> got = sw->TopCoefficients(top_k);
      std::size_t take = std::min(top_k, expected.size());
      ASSERT_EQ(got.size(), take) << "seed " << seed << " k=" << top_k;
      for (std::size_t r = 0; r < take; ++r) {
        EXPECT_EQ(expected[r].index, got[r].index) << "seed " << seed;
        EXPECT_EQ(Bits(expected[r].value), Bits(got[r].value))
            << "seed " << seed;
      }
    }

    // Forcing the scalar SIMD path must not change a single served bit
    // (serving replays fixed arithmetic; dispatch-sensitive code is all on
    // the construction side).
    {
      probsyn::testing::ScopedSimdPath scalar(SimdPath::kScalar);
      for (std::size_t i = 0; i < n; i += 7) {
        EXPECT_EQ(Bits(hist->histogram.Estimate(i)),
                  Bits(sh->PointEstimate(i)))
            << "scalar seed " << seed << " i=" << i;
      }
      EXPECT_EQ(Bits(wave->wavelet.EstimateRangeSum(0, n - 1)),
                Bits(sw->RangeSum(0, n - 1)))
          << "scalar seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, SynopsisServeDifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 8));

// --- Store unit tests. ------------------------------------------------------

TEST(SynopsisStore, MissingFileFailsWithIOError) {
  auto store = SynopsisStore::Open(TempPath("no_such_store.synstore"));
  EXPECT_EQ(store.status().code(), StatusCode::kIOError);
}

TEST(SynopsisStore, EmptyStoreRoundTrips) {
  const std::string path = TempPath("empty.synstore");
  SynopsisStoreWriter writer;
  ASSERT_TRUE(writer.WriteFile(path).ok());
  auto store = SynopsisStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->size(), 0u);
  EXPECT_TRUE(store->Names().empty());
  EXPECT_EQ(store->Find("anything").status().code(), StatusCode::kNotFound);
}

TEST(SynopsisStore, RejectsDuplicateAndEmptyNames) {
  SynopsisStoreWriter writer;
  Histogram h({{0, 1, 2.0}});
  EXPECT_EQ(writer.AddHistogram("", h).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(writer.AddHistogram("a", h).ok());
  EXPECT_EQ(writer.AddHistogram("a", h).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer.size(), 1u);
}

TEST(SynopsisStore, RejectsMalformedBlobOnAdd) {
  SynopsisStoreWriter writer;
  EXPECT_FALSE(writer.Add("junk", std::string("definitely not a blob")).ok());
}

TEST(SynopsisStore, LookupAndZeroCopyViews) {
  const std::string path = TempPath("lookup.synstore");
  SynopsisStoreWriter writer;
  Histogram h({{0, 3, 1.0}, {4, 7, 2.0}});
  WaveletSynopsis w(8, 8, {{0, 4.0}, {2, -1.0}});
  ASSERT_TRUE(writer.AddHistogram("zeta", h).ok());
  ASSERT_TRUE(writer.AddWavelet("alpha", w).ok());
  ASSERT_TRUE(writer.WriteFile(path).ok());

  auto store = SynopsisStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->size(), 2u);
  EXPECT_TRUE(store->Contains("zeta"));
  EXPECT_FALSE(store->Contains("beta"));
  EXPECT_EQ(store->Names(), (std::vector<std::string>{"alpha", "zeta"}));

  auto entry = store->Find("alpha");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->kind, SynopsisBlobKind::kWavelet);
  EXPECT_EQ(entry->offset % 8, 0u);

  // RawBlob is a window into the mapping itself — no copy.
  auto blob = store->RawBlob("zeta");
  ASSERT_TRUE(blob.ok());
  std::span<const std::uint8_t> mapped = store->data();
  EXPECT_GE(blob->data(), mapped.data());
  EXPECT_LE(blob->data() + blob->size(), mapped.data() + mapped.size());

  // The blob decodes back to what was written.
  auto decoded = DecodeHistogram(*blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_buckets(), 2u);
}

TEST(SynopsisStore, DeterministicBytesRegardlessOfAddOrder) {
  Histogram h({{0, 1, 1.0}});
  WaveletSynopsis w(2, 2, {{1, 3.0}});
  const std::string path_a = TempPath("order_a.synstore");
  const std::string path_b = TempPath("order_b.synstore");
  {
    SynopsisStoreWriter writer;
    ASSERT_TRUE(writer.AddHistogram("x", h).ok());
    ASSERT_TRUE(writer.AddWavelet("y", w).ok());
    ASSERT_TRUE(writer.WriteFile(path_a).ok());
  }
  {
    SynopsisStoreWriter writer;
    ASSERT_TRUE(writer.AddWavelet("y", w).ok());
    ASSERT_TRUE(writer.AddHistogram("x", h).ok());
    ASSERT_TRUE(writer.WriteFile(path_b).ok());
  }
  auto store_a = SynopsisStore::Open(path_a);
  auto store_b = SynopsisStore::Open(path_b);
  ASSERT_TRUE(store_a.ok() && store_b.ok());
  ASSERT_EQ(store_a->data().size(), store_b->data().size());
  EXPECT_EQ(std::memcmp(store_a->data().data(), store_b->data().data(),
                        store_a->data().size()),
            0);
}

TEST(SynopsisStore, CorruptedFilesFailCleanly) {
  const std::string path = TempPath("corrupt_base.synstore");
  SynopsisStoreWriter writer;
  ASSERT_TRUE(writer.AddHistogram("h", Histogram({{0, 2, 1.5}})).ok());
  ASSERT_TRUE(writer.WriteFile(path).ok());
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 40u);

  // Every single-byte corruption of the header or directory region must be
  // caught at Open (blob-body corruption is caught at decode, which the
  // codec sweep covers; the serving tier catches it in SynopsisServer::Open
  // because FromStore decodes every entry).
  const std::string corrupt_path = TempPath("corrupt.synstore");
  auto write_and_open = [&](const std::string& data) {
    std::ofstream os(corrupt_path, std::ios::binary | std::ios::trunc);
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
    os.close();
    return SynopsisServer::Open(corrupt_path).status();
  };
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0xff);
    Status status = write_and_open(mutated);
    EXPECT_FALSE(status.ok()) << "byte " << pos;
    EXPECT_TRUE(status.code() == StatusCode::kIOError ||
                status.code() == StatusCode::kInvalidArgument)
        << "byte " << pos << ": " << status.ToString();
  }
  // Truncations at a few representative lengths (0, mid-header, mid-blob,
  // one short of complete).
  for (std::size_t len :
       {std::size_t{0}, std::size_t{16}, bytes.size() / 2, bytes.size() - 1}) {
    Status status = write_and_open(bytes.substr(0, len));
    EXPECT_FALSE(status.ok()) << "truncated to " << len;
  }
}

TEST(SynopsisStore, OpenHonorsPdataReadFaultSite) {
  const std::string path = TempPath("faulted.synstore");
  SynopsisStoreWriter writer;
  ASSERT_TRUE(writer.AddHistogram("h", Histogram({{0, 0, 1.0}})).ok());
  ASSERT_TRUE(writer.WriteFile(path).ok());
  {
    ScopedFaultInjection faults(
        {.seed = 11, .rate = 1.0, .only_site = FaultSite::kPdataRead});
    EXPECT_FALSE(SynopsisStore::Open(path).ok());
  }
  EXPECT_TRUE(SynopsisStore::Open(path).ok());
}

// --- Server behavior beyond the sweep. --------------------------------------

StatusOr<SynopsisServer> MakeServer(const std::string& tag) {
  const std::string path = TempPath("server_" + tag + ".synstore");
  SynopsisStoreWriter writer;
  PROBSYN_RETURN_IF_ERROR(writer.AddHistogram(
      "hist", Histogram({{0, 3, 2.0}, {4, 9, -1.0}})));
  PROBSYN_RETURN_IF_ERROR(writer.AddWavelet(
      "wave", WaveletSynopsis(10, 16, {{0, 5.0}, {1, -2.0}, {7, 0.5}})));
  PROBSYN_RETURN_IF_ERROR(writer.WriteFile(path));
  return SynopsisServer::Open(path);
}

TEST(SynopsisServer, ValidatedWrappersReportCleanErrors) {
  auto server = MakeServer("errors");
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_EQ(server->size(), 2u);
  EXPECT_EQ(server->Find("nope"), nullptr);
  EXPECT_EQ(server->PointEstimate("nope", 0).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server->PointEstimate("hist", 10).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(server->RangeSum("hist", 5, 4).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(server->RangeSum("hist", 0, 10).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(server->TopCoefficients("hist", 2).status().code(),
            StatusCode::kInvalidArgument);
  auto top = server->TopCoefficients("wave", 2);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].index, 0u);
  EXPECT_EQ((*top)[1].index, 1u);
}

TEST(SynopsisServer, ServesHistogramQueriesThroughNamedApi) {
  auto server = MakeServer("named");
  ASSERT_TRUE(server.ok());
  auto point = server->PointEstimate("hist", 2);
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(*point, 2.0);
  auto sum = server->RangeSum("hist", 2, 5);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 2.0 * 2 + (-1.0) * 2);
  auto avg = server->RangeAverage("hist", 2, 5);
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(*avg, *sum / 4.0);
}

TEST(SynopsisServer, FailsToOpenWhenAnyEntryIsCorrupt) {
  // A store whose directory is intact but whose blob body was damaged must
  // be rejected at server Open — a server never comes up partially.
  const std::string path = TempPath("server_corrupt_blob.synstore");
  SynopsisStoreWriter writer;
  ASSERT_TRUE(writer.AddHistogram("h", Histogram({{0, 4, 3.0}})).ok());
  ASSERT_TRUE(writer.WriteFile(path).ok());
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  // Flip a byte inside the blob region (offset 32 = first blob, past its
  // 12-byte header into the payload) — store checksums do not cover blob
  // bodies, so Open(store) succeeds but the per-blob checksum fires.
  bytes[44] = static_cast<char>(bytes[44] ^ 0x01);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ASSERT_TRUE(SynopsisStore::Open(path).ok());
  EXPECT_FALSE(SynopsisServer::Open(path).ok());
}

// Four unsynchronized reader threads against one server: every thread must
// compute the identical answer stream (run under TSan in CI; the name
// matches the SynopsisServer regex of the TSan job).
TEST(SynopsisServerConcurrent, ReadersAreDeterministicAndRaceFree) {
  SynopsisEngine engine({.parallelism = 1});
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 128, .max_support = 4, .max_value = 9, .seed = 99});
  SynopsisRequest hist_request;
  hist_request.kind = SynopsisKind::kHistogram;
  hist_request.budget = 10;
  SynopsisRequest wave_request;
  wave_request.kind = SynopsisKind::kWavelet;
  wave_request.budget = 14;
  auto hist = engine.Build(input, hist_request);
  auto wave = engine.Build(input, wave_request);
  ASSERT_TRUE(hist.ok() && wave.ok());
  const std::string path = TempPath("concurrent.synstore");
  std::vector<NamedSynopsis> named;
  named.push_back({"h", *hist});
  named.push_back({"w", *wave});
  ASSERT_TRUE(engine.Store(path, named).ok());
  auto server = engine.Serve(path);
  ASSERT_TRUE(server.ok());

  constexpr int kThreads = 4;
  std::vector<std::uint64_t> digests(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &digests, t] {
      // FNV-1a over every query answer's bit pattern.
      std::uint64_t digest = 14695981039346656037ull;
      auto mix = [&digest](std::uint64_t bits) {
        for (int byte = 0; byte < 8; ++byte) {
          digest ^= (bits >> (8 * byte)) & 0xff;
          digest *= 1099511628211ull;
        }
      };
      const ServedSynopsis* sh = server->Find("h");
      const ServedSynopsis* sw = server->Find("w");
      for (int pass = 0; pass < 50; ++pass) {
        for (std::size_t i = 0; i < 128; ++i) {
          mix(Bits(sh->PointEstimate(i)));
          mix(Bits(sw->PointEstimate(i)));
        }
        mix(Bits(sh->RangeSum(3, 120)));
        mix(Bits(sw->RangeSum(3, 120)));
        for (const WaveletCoefficient& c : sw->TopCoefficients(5)) {
          mix(Bits(c.value));
        }
      }
      digests[static_cast<std::size_t>(t)] = digest;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(digests[0], digests[static_cast<std::size_t>(t)])
        << "thread " << t;
  }
}

}  // namespace
}  // namespace probsyn
