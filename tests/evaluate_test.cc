#include "core/evaluate.h"

#include <gtest/gtest.h>

#include "core/builders.h"
#include "core/oracle_factory.h"
#include "core/wavelet.h"
#include "gen/generators.h"
#include "model/induced.h"
#include "model/worlds.h"
#include "test_util.h"

namespace probsyn {
namespace {

TEST(EvaluateHistogram, MatchesWorldEnumerationOnValuePdf) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 6, .max_support = 3, .max_value = 4, .seed = 3});
  auto worlds = EnumerateWorlds(input);
  ASSERT_TRUE(worlds.ok());
  Histogram h({{0, 1, 0.5}, {2, 4, 2.0}, {5, 5, 1.0}});
  for (ErrorMetric metric :
       {ErrorMetric::kSse, ErrorMetric::kSsre, ErrorMetric::kSae,
        ErrorMetric::kSare, ErrorMetric::kMae, ErrorMetric::kMare}) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 0.5;
    auto got = EvaluateHistogram(input, h, options);
    ASSERT_TRUE(got.ok());
    EXPECT_NEAR(*got,
                testing::EnumeratedHistogramCost(worlds.value(), h, metric,
                                                 0.5),
                1e-9)
        << ErrorMetricName(metric);
  }
}

TEST(EvaluateHistogram, TuplePdfMatchesEnumerationIncludingSse) {
  // With fixed representatives, even SSE needs only marginals — the induced
  // value pdf must give the exact answer despite within-tuple correlation.
  TuplePdfInput input = testing::PaperExampleTuplePdf();
  auto worlds = EnumerateWorlds(input);
  ASSERT_TRUE(worlds.ok());
  Histogram h({{0, 1, 0.6}, {2, 2, 0.4}});
  for (ErrorMetric metric : {ErrorMetric::kSse, ErrorMetric::kSae,
                             ErrorMetric::kMare}) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 1.0;
    auto got = EvaluateHistogram(input, h, options);
    ASSERT_TRUE(got.ok());
    EXPECT_NEAR(*got,
                testing::EnumeratedHistogramCost(worlds.value(), h, metric,
                                                 1.0),
                1e-9)
        << ErrorMetricName(metric);
  }
}

TEST(EvaluateHistogram, RejectsMismatchedDomain) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  Histogram h({{0, 4, 1.0}});
  SynopsisOptions options;
  EXPECT_FALSE(EvaluateHistogram(input, h, options).ok());
}

TEST(EvaluateWorldMeanSse, MatchesEnumerationBothModels) {
  TuplePdfInput tuple_input = testing::PaperExampleTuplePdf();
  auto tuple_worlds = EnumerateWorlds(tuple_input);
  ASSERT_TRUE(tuple_worlds.ok());

  ValuePdfInput value_input = testing::PaperExampleValuePdf();
  auto value_worlds = EnumerateWorlds(value_input);
  ASSERT_TRUE(value_worlds.ok());

  for (const Histogram& h :
       {Histogram({{0, 2, 0.0}}), Histogram({{0, 0, 0.0}, {1, 2, 0.0}}),
        Histogram({{0, 1, 0.0}, {2, 2, 0.0}})}) {
    auto tuple_got = EvaluateHistogramWorldMeanSse(tuple_input, h);
    ASSERT_TRUE(tuple_got.ok());
    EXPECT_NEAR(*tuple_got,
                testing::EnumeratedWorldMeanSse(tuple_worlds.value(), h),
                1e-10);

    auto value_got = EvaluateHistogramWorldMeanSse(value_input, h);
    ASSERT_TRUE(value_got.ok());
    EXPECT_NEAR(*value_got,
                testing::EnumeratedWorldMeanSse(value_worlds.value(), h),
                1e-10);
  }
}

TEST(EvaluateWavelet, MatchesManualPointErrors) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 8, .max_support = 3, .max_value = 5, .seed = 7});
  auto synopsis = BuildSseOptimalWavelet(input, 3);
  ASSERT_TRUE(synopsis.ok());
  std::vector<double> ghat = synopsis->ToFrequencyVector();

  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto got = EvaluateWavelet(input, synopsis.value(), options);
  ASSERT_TRUE(got.ok());

  double expect = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    expect += input.item(i).ExpectedAbsDeviation(ghat[i]);
  }
  EXPECT_NEAR(*got, expect, 1e-9);
}

TEST(EvaluateWavelet, PaddedItemsCountAgainstTheSynopsis) {
  // Domain 3 pads to 4; a synopsis that reconstructs nonzero mass at the
  // padded slot pays for it.
  ValuePdfInput input = testing::PaperExampleValuePdf();
  WaveletSynopsis only_average(3, 4, {{0, 2.0}});  // ghat = 1 everywhere
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto got = EvaluateWavelet(input, only_average, options);
  ASSERT_TRUE(got.ok());
  double expect = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    expect += input.item(i).ExpectedAbsDeviation(1.0);
  }
  expect += 1.0;  // padded item: |0 - 1|
  EXPECT_NEAR(*got, expect, 1e-9);
}

TEST(WaveletEnergy, UnretainedPercent) {
  std::vector<double> mu{3.0, 0.0, 4.0, 0.0};  // total energy 25
  WaveletSynopsis keep_first(4, 4, {{0, 3.0}});
  EXPECT_NEAR(WaveletUnretainedEnergyPercent(mu, keep_first), 64.0, 1e-9);
  WaveletSynopsis keep_both(4, 4, {{0, 3.0}, {2, 4.0}});
  EXPECT_NEAR(WaveletUnretainedEnergyPercent(mu, keep_both), 0.0, 1e-9);
  WaveletSynopsis keep_none(4, 4, {});
  EXPECT_NEAR(WaveletUnretainedEnergyPercent(mu, keep_none), 100.0, 1e-9);
}

TEST(ErrorScale, PercentNormalization) {
  ErrorScale scale{100.0, 20.0};
  EXPECT_NEAR(scale.Percent(100.0), 100.0, 1e-12);
  EXPECT_NEAR(scale.Percent(20.0), 0.0, 1e-12);
  EXPECT_NEAR(scale.Percent(60.0), 50.0, 1e-12);
  EXPECT_NEAR(scale.Percent(10.0), 0.0, 1e-12);   // clamped
  EXPECT_NEAR(scale.Percent(200.0), 100.0, 1e-12);  // clamped

  ErrorScale degenerate{5.0, 5.0};
  EXPECT_DOUBLE_EQ(degenerate.Percent(5.0), 0.0);
}

TEST(ErrorScale, ComputedFromOracleEndpoints) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 12, .max_support = 3, .max_value = 6, .seed = 9});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  ErrorScale scale = ComputeErrorScale(*bundle->oracle, true);

  // The scale endpoints bracket every DP optimum.
  auto builder = HistogramBuilder::Create(input, options, 12);
  ASSERT_TRUE(builder.ok());
  for (std::size_t b = 1; b <= 12; ++b) {
    double cost = builder->OptimalCost(b);
    EXPECT_GE(cost, scale.min_cost - 1e-9);
    EXPECT_LE(cost, scale.max_cost + 1e-9);
  }
  EXPECT_NEAR(builder->OptimalCost(1), scale.max_cost, 1e-9);
  EXPECT_NEAR(builder->OptimalCost(12), scale.min_cost, 1e-9);
}

}  // namespace
}  // namespace probsyn
