// 2-D probabilistic histograms: rectangle oracle, exact guillotine DP,
// greedy splitting.

#include "core/histogram2d.h"

#include <limits>

#include <gtest/gtest.h>

#include "core/histogram.h"
#include "gen/generators.h"
#include "util/logging.h"
#include "util/random.h"

namespace probsyn {
namespace {

ProbGrid2D RandomGrid(std::size_t w, std::size_t h, std::uint64_t seed) {
  ValuePdfInput flat = GenerateRandomValuePdf(
      {.domain_size = w * h, .max_support = 3, .max_value = 6, .seed = seed});
  auto grid = ProbGrid2D::Create(w, h, flat.items());
  PROBSYN_CHECK(grid.ok());
  return std::move(grid).value();
}

SynopsisOptions SseOptions() {
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  return options;
}

TEST(ProbGrid2D, CreateValidation) {
  EXPECT_FALSE(ProbGrid2D::Create(0, 3, {}).ok());
  EXPECT_FALSE(ProbGrid2D::Create(2, 2, {ValuePdf::PointMass(1)}).ok());
  EXPECT_FALSE(
      ProbGrid2D::Create(1, 1, {ValuePdf()}).ok());  // empty pdf
  auto ok = ProbGrid2D::Create(
      2, 1, {ValuePdf::PointMass(1), ValuePdf::PointMass(2)});
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok->cell(1, 0).Mean(), 2.0);
}

TEST(Histogram2D, ValidateTilingRules) {
  Histogram2D good({{{0, 0, 1, 1}, 1.0}, {{2, 0, 2, 1}, 2.0}});
  EXPECT_TRUE(good.Validate(3, 2).ok());

  Histogram2D overlap({{{0, 0, 1, 1}, 1.0}, {{1, 0, 2, 1}, 2.0}});
  EXPECT_FALSE(overlap.Validate(3, 2).ok());

  Histogram2D gap({{{0, 0, 0, 1}, 1.0}, {{2, 0, 2, 1}, 2.0}});
  EXPECT_FALSE(gap.Validate(3, 2).ok());

  Histogram2D oob({{{0, 0, 3, 1}, 1.0}});
  EXPECT_FALSE(oob.Validate(3, 2).ok());
}

TEST(Histogram2D, EstimatesAndRangeSums) {
  Histogram2D h({{{0, 0, 1, 1}, 2.0}, {{2, 0, 2, 1}, 5.0}});
  ASSERT_TRUE(h.Validate(3, 2).ok());
  EXPECT_DOUBLE_EQ(h.Estimate(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(h.Estimate(2, 1), 5.0);
  EXPECT_DOUBLE_EQ(h.EstimateRangeSum({0, 0, 2, 1}), 4 * 2.0 + 2 * 5.0);
  EXPECT_DOUBLE_EQ(h.EstimateRangeSum({1, 1, 2, 1}), 2.0 + 5.0);
}

TEST(RectOracle2D, MatchesDirectComputation) {
  ProbGrid2D grid = RandomGrid(5, 4, 11);
  auto oracle = RectCostOracle2D::Create(grid, SseOptions());
  ASSERT_TRUE(oracle.ok());
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    std::size_t x0 = rng.NextBounded(5), x1 = x0 + rng.NextBounded(5 - x0);
    std::size_t y0 = rng.NextBounded(4), y1 = y0 + rng.NextBounded(4 - y0);
    Rect rect{x0, y0, x1, y1};
    auto got = oracle->Cost(rect);

    // Direct: optimal representative is the mean of expected frequencies;
    // cost is sum E[(g - rep)^2].
    double mean = 0.0;
    for (std::size_t y = y0; y <= y1; ++y) {
      for (std::size_t x = x0; x <= x1; ++x) mean += grid.cell(x, y).Mean();
    }
    mean /= static_cast<double>(rect.area());
    double direct = 0.0;
    for (std::size_t y = y0; y <= y1; ++y) {
      for (std::size_t x = x0; x <= x1; ++x) {
        direct += grid.cell(x, y).ExpectedSquaredDeviation(mean);
      }
    }
    EXPECT_NEAR(got.representative, mean, 1e-9);
    EXPECT_NEAR(got.cost, direct, 1e-8);
  }
}

TEST(RectOracle2D, RejectsUnsupportedMetrics) {
  ProbGrid2D grid = RandomGrid(3, 3, 1);
  SynopsisOptions abs;
  abs.metric = ErrorMetric::kSae;
  EXPECT_FALSE(RectCostOracle2D::Create(grid, abs).ok());
  SynopsisOptions world_mean;
  world_mean.metric = ErrorMetric::kSse;
  world_mean.sse_variant = SseVariant::kWorldMean;
  EXPECT_FALSE(RectCostOracle2D::Create(grid, world_mean).ok());
}

TEST(Guillotine2D, DegeneratesToOneDimensionalDp) {
  // A 1 x n grid: guillotine partitions are exactly 1-D bucketings, so the
  // DP must match the 1-D V-optimal histogram cost.
  ValuePdfInput flat = GenerateRandomValuePdf(
      {.domain_size = 10, .max_support = 3, .max_value = 6, .seed = 5});
  auto grid = ProbGrid2D::Create(10, 1, flat.items());
  ASSERT_TRUE(grid.ok());
  for (std::size_t b : {1u, 2u, 3u, 5u}) {
    auto two_d = BuildOptimalGuillotineHistogram2D(grid.value(), SseOptions(), b);
    ASSERT_TRUE(two_d.ok());
    // 1-D comparison via the exhaustive bucketization oracle.
    double best_1d = std::numeric_limits<double>::infinity();
    auto oracle = RectCostOracle2D::Create(grid.value(), SseOptions());
    ASSERT_TRUE(oracle.ok());
    ForEachBucketization(10, b, [&](const std::vector<std::size_t>& ends) {
      double total = 0.0;
      std::size_t start = 0;
      for (std::size_t end : ends) {
        total += oracle->Cost({start, 0, end, 0}).cost;
        start = end + 1;
      }
      best_1d = std::min(best_1d, total);
    });
    // "At most b" vs "exactly b": the DP may use fewer buckets.
    EXPECT_LE(two_d->cost, best_1d + 1e-9) << "B=" << b;
    if (b == 1) {
      EXPECT_NEAR(two_d->cost, best_1d, 1e-9);
    }
  }
}

TEST(Guillotine2D, MatchesBruteForceOnTinyGrids) {
  // 2x2 grid, B=2: candidate partitions are {whole}, {left|right},
  // {top|bottom}; enumerate by hand.
  ProbGrid2D grid = RandomGrid(2, 2, 7);
  auto oracle = RectCostOracle2D::Create(grid, SseOptions());
  ASSERT_TRUE(oracle.ok());
  double whole = oracle->Cost({0, 0, 1, 1}).cost;
  double vertical =
      oracle->Cost({0, 0, 0, 1}).cost + oracle->Cost({1, 0, 1, 1}).cost;
  double horizontal =
      oracle->Cost({0, 0, 1, 0}).cost + oracle->Cost({0, 1, 1, 1}).cost;
  double expected = std::min({whole, vertical, horizontal});

  auto result = BuildOptimalGuillotineHistogram2D(grid, SseOptions(), 2);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->cost, expected, 1e-9);
  EXPECT_TRUE(result->histogram.Validate(2, 2).ok());
}

TEST(Guillotine2D, MonotoneInBudgetAndConsistentWithEvaluation) {
  ProbGrid2D grid = RandomGrid(6, 5, 13);
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t b = 1; b <= 8; ++b) {
    auto result = BuildOptimalGuillotineHistogram2D(grid, SseOptions(), b);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->cost, prev + 1e-9) << "B=" << b;
    prev = result->cost;
    auto evaluated = EvaluateHistogram2D(grid, result->histogram, SseOptions());
    ASSERT_TRUE(evaluated.ok());
    EXPECT_NEAR(*evaluated, result->cost, 1e-8) << "B=" << b;
  }
}

// The min-scan kernel (budget-vector memo + SIMD budget-split reduction)
// must reproduce the reference recursive solver bit-for-bit: costs AND the
// extracted tiling (traceback cut / orientation / budget-split ties).
TEST(Guillotine2D, MinScanKernelMatchesReferenceBitForBit) {
  for (std::uint64_t seed : {4u, 19u, 31u}) {
    ProbGrid2D grid = RandomGrid(6, 5, seed);
    for (std::size_t b = 1; b <= 10; ++b) {
      auto reference = BuildOptimalGuillotineHistogram2D(
          grid, SseOptions(), b, 4096, Guillotine2DKernel::kReference);
      auto fast = BuildOptimalGuillotineHistogram2D(
          grid, SseOptions(), b, 4096, Guillotine2DKernel::kMinScan);
      ASSERT_TRUE(reference.ok() && fast.ok());
      EXPECT_EQ(reference->kernel, Guillotine2DKernel::kReference);
      EXPECT_EQ(fast->kernel, Guillotine2DKernel::kMinScan);
      EXPECT_EQ(reference->cost, fast->cost) << "seed " << seed << " B=" << b;
      ASSERT_EQ(reference->histogram.num_buckets(),
                fast->histogram.num_buckets());
      for (std::size_t i = 0; i < fast->histogram.num_buckets(); ++i) {
        EXPECT_EQ(reference->histogram.buckets()[i],
                  fast->histogram.buckets()[i])
            << "seed " << seed << " B=" << b << " bucket " << i;
      }
    }
  }
}

TEST(Guillotine2D, DefaultKernelIsMinScan) {
  ProbGrid2D grid = RandomGrid(3, 3, 8);
  auto result = BuildOptimalGuillotineHistogram2D(grid, SseOptions(), 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kernel, Guillotine2DKernel::kMinScan);
}

TEST(Guillotine2D, SsreMetricAgreesAcrossKernels) {
  ProbGrid2D grid = RandomGrid(5, 4, 41);
  SynopsisOptions options;
  options.metric = ErrorMetric::kSsre;
  options.sanity_c = 0.5;
  auto reference = BuildOptimalGuillotineHistogram2D(
      grid, options, 6, 4096, Guillotine2DKernel::kReference);
  auto fast = BuildOptimalGuillotineHistogram2D(grid, options, 6);
  ASSERT_TRUE(reference.ok() && fast.ok());
  EXPECT_EQ(reference->cost, fast->cost);
}

TEST(Guillotine2D, RejectsOversizedGrids) {
  ProbGrid2D grid = RandomGrid(10, 10, 2);
  auto result =
      BuildOptimalGuillotineHistogram2D(grid, SseOptions(), 4, /*max_cells=*/64);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(Greedy2D, ValidTilingAndEvaluationConsistency) {
  ProbGrid2D grid = RandomGrid(12, 9, 17);
  for (std::size_t b : {1u, 4u, 10u, 30u}) {
    auto result = BuildGreedyHistogram2D(grid, SseOptions(), b);
    ASSERT_TRUE(result.ok()) << "B=" << b;
    EXPECT_TRUE(result->histogram.Validate(12, 9).ok());
    EXPECT_LE(result->histogram.num_buckets(), b);
    auto evaluated = EvaluateHistogram2D(grid, result->histogram, SseOptions());
    ASSERT_TRUE(evaluated.ok());
    EXPECT_NEAR(*evaluated, result->cost, 1e-8);
  }
}

TEST(Greedy2D, NeverBeatsGuillotineOptimumAndStaysClose) {
  for (std::uint64_t seed : {3u, 9u, 27u}) {
    ProbGrid2D grid = RandomGrid(6, 6, seed);
    for (std::size_t b : {2u, 4u, 6u}) {
      auto exact = BuildOptimalGuillotineHistogram2D(grid, SseOptions(), b);
      auto greedy = BuildGreedyHistogram2D(grid, SseOptions(), b);
      ASSERT_TRUE(exact.ok() && greedy.ok());
      EXPECT_GE(greedy->cost, exact->cost - 1e-9)
          << "seed " << seed << " B=" << b;
      // Heuristic quality guard: within 2x of optimal on these inputs.
      EXPECT_LE(greedy->cost, 2.0 * exact->cost + 1e-6)
          << "seed " << seed << " B=" << b;
    }
  }
}

TEST(Greedy2D, SsreMetricWorks) {
  ProbGrid2D grid = RandomGrid(8, 8, 23);
  SynopsisOptions options;
  options.metric = ErrorMetric::kSsre;
  options.sanity_c = 0.5;
  auto result = BuildGreedyHistogram2D(grid, options, 6);
  ASSERT_TRUE(result.ok());
  auto evaluated = EvaluateHistogram2D(grid, result->histogram, options);
  ASSERT_TRUE(evaluated.ok());
  EXPECT_NEAR(*evaluated, result->cost, 1e-8);
}

TEST(Greedy2D, FindsPlantedBlockStructure) {
  // Four quadrants with distinct deterministic levels: with B=4 the greedy
  // must recover (near-)zero error.
  const std::size_t n = 8;
  std::vector<ValuePdf> cells;
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      double level = (x < n / 2 ? 1.0 : 5.0) + (y < n / 2 ? 0.0 : 10.0);
      cells.push_back(ValuePdf::PointMass(level));
    }
  }
  auto grid = ProbGrid2D::Create(n, n, std::move(cells));
  ASSERT_TRUE(grid.ok());
  auto result = BuildGreedyHistogram2D(grid.value(), SseOptions(), 4);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->cost, 0.0, 1e-9);
  EXPECT_EQ(result->histogram.num_buckets(), 4u);
}

}  // namespace
}  // namespace probsyn
