// Engine parity: the SynopsisEngine facade must serve every construction
// path with output bit-identical (costs AND boundaries/coefficients) to
// calling the underlying solver directly, sequentially. This pins down the
// tentpole guarantee that the engine adds routing, sharing, parallelism,
// and timing — never a different answer.

#include "engine/synopsis_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/builders.h"
#include "core/histogram_dp.h"
#include "core/oracle_factory.h"
#include "core/wavelet.h"
#include "core/wavelet_dp.h"
#include "core/wavelet_unrestricted.h"
#include "gen/generators.h"
#include "stream/streaming_histogram.h"
#include "util/thread_pool.h"

namespace probsyn {
namespace {

constexpr ErrorMetric kAllMetrics[] = {
    ErrorMetric::kSse,  ErrorMetric::kSsre, ErrorMetric::kSae,
    ErrorMetric::kSare, ErrorMetric::kMae,  ErrorMetric::kMare};

SynopsisOptions OptionsFor(ErrorMetric metric) {
  SynopsisOptions options;
  options.metric = metric;
  options.sanity_c = 0.5;
  return options;
}

ValuePdfInput TestValuePdf() {
  return GenerateRandomValuePdf({.domain_size = 48, .seed = 11});
}

TuplePdfInput TestTuplePdf() {
  return GenerateRandomTuplePdf({.domain_size = 40, .seed = 13});
}

// A parallel engine whose pool is engaged even on tiny test domains.
SynopsisEngine ParallelEngine() {
  return SynopsisEngine({.parallelism = 4, .min_parallel_domain = 1});
}

// --- Exact route: engine output == direct DP, for every metric x model. --

template <typename Input>
void CheckExactParity(const Input& input, ErrorMetric metric) {
  SynopsisOptions options = OptionsFor(metric);
  const std::size_t kBuckets = 6;

  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  HistogramDpResult dp =
      SolveHistogramDp(*bundle->oracle, kBuckets, bundle->combiner);
  Histogram expected = dp.ExtractHistogram(kBuckets);
  double expected_cost = dp.OptimalCost(kBuckets);

  SynopsisRequest request;
  request.kind = SynopsisKind::kHistogram;
  request.method = HistogramMethod::kOptimal;
  request.budget = kBuckets;
  request.options = options;

  for (bool parallel : {false, true}) {
    SynopsisEngine engine =
        parallel ? ParallelEngine()
                 : SynopsisEngine(SynopsisEngine::Options{.parallelism = 1});
    auto result = engine.Build(input, request);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->kind, SynopsisKind::kHistogram);
    EXPECT_EQ(result->cost, expected_cost)
        << ErrorMetricName(metric) << " parallel=" << parallel;
    EXPECT_TRUE(result->histogram == expected)
        << ErrorMetricName(metric) << " parallel=" << parallel;
  }
}

TEST(EngineParity, ExactHistogramValuePdfAllMetrics) {
  ValuePdfInput input = TestValuePdf();
  for (ErrorMetric metric : kAllMetrics) CheckExactParity(input, metric);
}

TEST(EngineParity, ExactHistogramTuplePdfAllMetrics) {
  TuplePdfInput input = TestTuplePdf();
  for (ErrorMetric metric : kAllMetrics) CheckExactParity(input, metric);
}

TEST(EngineParity, ExactHistogramBothSseVariants) {
  ValuePdfInput value_input = TestValuePdf();
  TuplePdfInput tuple_input = TestTuplePdf();
  for (SseVariant variant :
       {SseVariant::kWorldMean, SseVariant::kFixedRepresentative}) {
    SynopsisOptions options = OptionsFor(ErrorMetric::kSse);
    options.sse_variant = variant;
    SynopsisRequest request;
    request.budget = 5;
    request.options = options;

    SynopsisEngine engine = ParallelEngine();
    auto via_engine = engine.Build(tuple_input, request);
    ASSERT_TRUE(via_engine.ok()) << via_engine.status();
    auto direct = BuildOptimalHistogram(tuple_input, options, 5);
    ASSERT_TRUE(direct.ok());
    EXPECT_TRUE(via_engine->histogram == *direct);

    auto via_engine_v = engine.Build(value_input, request);
    ASSERT_TRUE(via_engine_v.ok()) << via_engine_v.status();
    auto direct_v = BuildOptimalHistogram(value_input, options, 5);
    ASSERT_TRUE(direct_v.ok());
    EXPECT_TRUE(via_engine_v->histogram == *direct_v);
  }
}

// --- Parallel DP == sequential DP, bit-identical, across block seams. ----

TEST(ParallelDp, MatchesSequentialAcrossMetricsAndBudgets) {
  // n > 256 exercises multiple column blocks of the parallel solver.
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 300, .seed = 7});
  ThreadPool pool(3);
  const std::size_t kBuckets = 10;
  for (ErrorMetric metric :
       {ErrorMetric::kSse, ErrorMetric::kSae, ErrorMetric::kMae}) {
    SynopsisOptions options = OptionsFor(metric);
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok()) << bundle.status();
    HistogramDpResult sequential =
        SolveHistogramDp(*bundle->oracle, kBuckets, bundle->combiner);
    HistogramDpResult parallel =
        SolveHistogramDp(*bundle->oracle, kBuckets, bundle->combiner, &pool);
    for (std::size_t b = 1; b <= kBuckets; ++b) {
      EXPECT_EQ(parallel.OptimalCost(b), sequential.OptimalCost(b))
          << ErrorMetricName(metric) << " B=" << b;
      EXPECT_TRUE(parallel.ExtractHistogram(b) == sequential.ExtractHistogram(b))
          << ErrorMetricName(metric) << " B=" << b;
    }
  }
}

TEST(ParallelDp, MatchesSequentialOnTupleSweepOracle) {
  // The exact tuple-pdf world-mean SSE oracle is the stateful-sweep one;
  // the parallel solver must drive one independent sweep per column.
  TuplePdfInput input = GenerateRandomTuplePdf({.domain_size = 64, .seed = 3});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kWorldMean;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  ThreadPool pool(4);
  HistogramDpResult sequential =
      SolveHistogramDp(*bundle->oracle, 8, bundle->combiner);
  HistogramDpResult parallel =
      SolveHistogramDp(*bundle->oracle, 8, bundle->combiner, &pool);
  for (std::size_t b = 1; b <= 8; ++b) {
    EXPECT_EQ(parallel.OptimalCost(b), sequential.OptimalCost(b)) << b;
    EXPECT_TRUE(parallel.ExtractHistogram(b) == sequential.ExtractHistogram(b));
  }
}

TEST(ParallelDp, ParallelOraclePreprocessingIsIdentical) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 96, .seed = 21});
  ThreadPool pool(3);
  for (ErrorMetric metric : {ErrorMetric::kSae, ErrorMetric::kSare,
                             ErrorMetric::kMae, ErrorMetric::kMare}) {
    SynopsisOptions options = OptionsFor(metric);
    auto plain = MakeBucketOracle(input, options);
    auto pooled = MakeBucketOracle(input, options, &pool);
    ASSERT_TRUE(plain.ok() && pooled.ok());
    for (std::size_t s = 0; s < input.domain_size(); s += 7) {
      for (std::size_t e = s; e < input.domain_size(); e += 5) {
        BucketCost a = plain->oracle->Cost(s, e);
        BucketCost b = pooled->oracle->Cost(s, e);
        EXPECT_EQ(a.cost, b.cost) << ErrorMetricName(metric);
        EXPECT_EQ(a.representative, b.representative);
      }
    }
  }
}

// --- Approximate route. --------------------------------------------------

TEST(EngineParity, ApproxHistogramMatchesDirectSolver) {
  ValuePdfInput input = TestValuePdf();
  for (ErrorMetric metric : {ErrorMetric::kSse, ErrorMetric::kSae}) {
    SynopsisOptions options = OptionsFor(metric);
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok());
    auto direct = SolveApproxHistogramDp(*bundle->oracle, 6, 0.25);
    ASSERT_TRUE(direct.ok()) << direct.status();

    SynopsisRequest request;
    request.method = HistogramMethod::kApprox;
    request.budget = 6;
    request.epsilon = 0.25;
    request.options = options;
    SynopsisEngine engine = ParallelEngine();
    auto result = engine.Build(input, request);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->cost, direct->cost);
    EXPECT_TRUE(result->histogram == direct->histogram);
    EXPECT_EQ(result->oracle_evaluations, direct->oracle_evaluations);
  }
}

// --- Streaming route. ----------------------------------------------------

TEST(EngineParity, StreamingHistogramMatchesDirectBuilder) {
  ValuePdfInput input = TestValuePdf();
  StreamingHistogramBuilder direct(5, 0.2);
  for (const ValuePdf& pdf : input.items()) direct.Push(pdf);
  auto finished = direct.Finish();
  ASSERT_TRUE(finished.ok());

  SynopsisRequest request;
  request.method = HistogramMethod::kStreaming;
  request.budget = 5;
  request.epsilon = 0.2;
  request.options.metric = ErrorMetric::kSse;
  request.options.sse_variant = SseVariant::kFixedRepresentative;
  SynopsisEngine engine;
  auto result = engine.Build(input, request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->cost, finished->cost);
  EXPECT_TRUE(result->histogram == finished->histogram);
}

// --- Wavelet routes. -----------------------------------------------------

TEST(EngineParity, WaveletRoutesMatchDirectSolvers) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 16, .seed = 9});
  SynopsisEngine engine;

  // Greedy SSE (Theorem 7).
  {
    SynopsisRequest request;
    request.kind = SynopsisKind::kWavelet;
    request.budget = 4;
    request.wavelet_method = WaveletMethod::kGreedySse;
    auto result = engine.Build(input, request);
    ASSERT_TRUE(result.ok()) << result.status();
    auto direct = BuildSseOptimalWavelet(input, 4);
    ASSERT_TRUE(direct.ok());
    EXPECT_TRUE(result->wavelet == *direct);
  }

  // Restricted DP (Theorem 8), non-SSE metric, selected by kAuto.
  {
    SynopsisRequest request;
    request.kind = SynopsisKind::kWavelet;
    request.budget = 4;
    request.options = OptionsFor(ErrorMetric::kSae);
    auto result = engine.Build(input, request);
    ASSERT_TRUE(result.ok()) << result.status();
    auto direct = BuildRestrictedWaveletDp(input, 4, request.options);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(result->cost, direct->cost);
    EXPECT_TRUE(result->wavelet == direct->synopsis);
  }

  // Unrestricted DP.
  {
    SynopsisRequest request;
    request.kind = SynopsisKind::kWavelet;
    request.budget = 3;
    request.options = OptionsFor(ErrorMetric::kMae);
    request.wavelet_method = WaveletMethod::kUnrestrictedDp;
    auto result = engine.Build(input, request);
    ASSERT_TRUE(result.ok()) << result.status();
    auto direct = BuildUnrestrictedWaveletDp(input, 3, request.options,
                                             request.unrestricted);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(result->cost, direct->cost);
    EXPECT_TRUE(result->wavelet == direct->synopsis);
  }
}

// --- Batch semantics. ----------------------------------------------------

TEST(EngineBatch, BatchResultsMatchIndividualBuilds) {
  ValuePdfInput input = TestValuePdf();
  SynopsisEngine engine = ParallelEngine();

  std::vector<SynopsisRequest> requests;
  for (std::size_t budget : {2, 4, 8}) {  // one shared SSE oracle + DP
    SynopsisRequest r;
    r.budget = budget;
    requests.push_back(r);
  }
  {
    SynopsisRequest r;  // different metric -> second oracle group
    r.budget = 4;
    r.options = OptionsFor(ErrorMetric::kMae);
    requests.push_back(r);
  }
  {
    SynopsisRequest r;  // approx rider on the SSE group's oracle
    r.budget = 4;
    r.method = HistogramMethod::kApprox;
    r.epsilon = 0.5;
    requests.push_back(r);
  }
  {
    SynopsisRequest r;  // wavelet single
    r.kind = SynopsisKind::kWavelet;
    r.budget = 5;
    requests.push_back(r);
  }

  auto batch = engine.BuildBatch(input, requests);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto single = engine.Build(input, requests[i]);
    ASSERT_TRUE(single.ok()) << single.status();
    EXPECT_EQ((*batch)[i].cost, single->cost) << "request " << i;
    EXPECT_TRUE((*batch)[i].histogram == single->histogram) << "request " << i;
    EXPECT_TRUE((*batch)[i].wavelet == single->wavelet) << "request " << i;
  }
}

TEST(EngineBatch, BaselineMethodsProduceValidHistograms) {
  TuplePdfInput input = TestTuplePdf();
  SynopsisEngine engine;
  for (HistogramMethod method :
       {HistogramMethod::kExpectation, HistogramMethod::kSampledWorld,
        HistogramMethod::kEquiDepth}) {
    SynopsisRequest request;
    request.method = method;
    request.budget = 4;
    auto result = engine.Build(input, request);
    ASSERT_TRUE(result.ok())
        << HistogramMethodName(method) << ": " << result.status();
    EXPECT_TRUE(result->histogram.Validate(input.domain_size()).ok());
    EXPECT_GE(result->cost, 0.0);
    EXPECT_LE(result->histogram.num_buckets(), 4u);
  }
}

// --- Error paths. --------------------------------------------------------

TEST(EngineErrors, RejectsInvalidRequests) {
  ValuePdfInput input = TestValuePdf();
  SynopsisEngine engine;

  SynopsisRequest zero_budget;
  zero_budget.budget = 0;
  EXPECT_EQ(engine.Build(input, zero_budget).status().code(),
            StatusCode::kInvalidArgument);

  SynopsisRequest approx_max;
  approx_max.method = HistogramMethod::kApprox;
  approx_max.budget = 4;
  approx_max.options = OptionsFor(ErrorMetric::kMae);
  EXPECT_EQ(engine.Build(input, approx_max).status().code(),
            StatusCode::kUnimplemented);

  SynopsisRequest streaming_sae;
  streaming_sae.method = HistogramMethod::kStreaming;
  streaming_sae.budget = 4;
  streaming_sae.options = OptionsFor(ErrorMetric::kSae);
  EXPECT_EQ(engine.Build(input, streaming_sae).status().code(),
            StatusCode::kUnimplemented);

  SynopsisRequest bad_epsilon;
  bad_epsilon.method = HistogramMethod::kApprox;
  bad_epsilon.budget = 4;
  bad_epsilon.epsilon = 0.0;
  EXPECT_EQ(engine.Build(input, bad_epsilon).status().code(),
            StatusCode::kInvalidArgument);

  ValuePdfInput empty{std::vector<ValuePdf>{}};
  SynopsisRequest ok_request;
  ok_request.budget = 2;
  EXPECT_EQ(engine.Build(empty, ok_request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineErrors, MethodNamesRoundTrip) {
  for (HistogramMethod m :
       {HistogramMethod::kOptimal, HistogramMethod::kApprox,
        HistogramMethod::kStreaming, HistogramMethod::kExpectation,
        HistogramMethod::kSampledWorld, HistogramMethod::kEquiDepth}) {
    auto parsed = ParseHistogramMethod(HistogramMethodName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, m);
  }
  for (WaveletMethod m :
       {WaveletMethod::kAuto, WaveletMethod::kGreedySse,
        WaveletMethod::kRestrictedDp, WaveletMethod::kUnrestrictedDp}) {
    auto parsed = ParseWaveletMethod(WaveletMethodName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(ParseHistogramMethod("nope").ok());
  EXPECT_FALSE(ParseWaveletMethod("nope").ok());
}

}  // namespace
}  // namespace probsyn
