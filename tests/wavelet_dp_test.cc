// Restricted non-SSE wavelet DP (paper section 4.2, Theorem 8) against
// exhaustive subset search.

#include "core/wavelet_dp.h"

#include <limits>

#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "core/wavelet.h"
#include "gen/generators.h"
#include "test_util.h"

namespace probsyn {
namespace {

// Exhaustive optimum over all <=B subsets of coefficients with values fixed
// at the expected coefficients mu (the restricted problem).
double BruteRestrictedOptimum(const ValuePdfInput& input, std::size_t budget,
                              const SynopsisOptions& options) {
  std::vector<double> mu = ExpectedHaarCoefficients(input.ExpectedFrequencies());
  const std::size_t nt = mu.size();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < (1u << nt); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcount(mask)) > budget) continue;
    std::vector<WaveletCoefficient> coeffs;
    for (std::size_t i = 0; i < nt; ++i) {
      if (mask & (1u << i)) coeffs.push_back({i, mu[i]});
    }
    WaveletSynopsis candidate(input.domain_size(), nt, std::move(coeffs));
    auto cost = EvaluateWavelet(input, candidate, options);
    if (cost.ok()) best = std::min(best, *cost);
  }
  return best;
}

struct WaveletDpCase {
  ErrorMetric metric;
  double c;
  std::size_t domain;
  std::size_t budget;
  std::uint64_t seed;
};

class WaveletDpTest : public ::testing::TestWithParam<WaveletDpCase> {};

TEST_P(WaveletDpTest, MatchesExhaustiveRestrictedSearch) {
  const WaveletDpCase& param = GetParam();
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = param.domain, .max_support = 3, .max_value = 5,
       .seed = param.seed});
  SynopsisOptions options;
  options.metric = param.metric;
  options.sanity_c = param.c;

  auto result = BuildRestrictedWaveletDp(input, param.budget, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(result->synopsis.num_coefficients(), param.budget);
  EXPECT_TRUE(result->synopsis.Validate().ok());

  // (a) The DP's reported cost equals the evaluated cost of its synopsis.
  auto evaluated = EvaluateWavelet(input, result->synopsis, options);
  ASSERT_TRUE(evaluated.ok());
  EXPECT_NEAR(result->cost, *evaluated, 1e-9);

  // (b) No subset does better.
  double brute = BruteRestrictedOptimum(input, param.budget, options);
  EXPECT_NEAR(result->cost, brute, 1e-9)
      << ErrorMetricName(param.metric) << " n=" << param.domain
      << " B=" << param.budget;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, WaveletDpTest,
    ::testing::Values(
        WaveletDpCase{ErrorMetric::kSae, 1.0, 4, 1, 1},
        WaveletDpCase{ErrorMetric::kSae, 1.0, 4, 2, 2},
        WaveletDpCase{ErrorMetric::kSae, 1.0, 8, 3, 3},
        WaveletDpCase{ErrorMetric::kSare, 0.5, 8, 2, 4},
        WaveletDpCase{ErrorMetric::kSare, 1.0, 8, 4, 5},
        WaveletDpCase{ErrorMetric::kMae, 1.0, 8, 2, 6},
        WaveletDpCase{ErrorMetric::kMare, 0.5, 8, 3, 7},
        WaveletDpCase{ErrorMetric::kSse, 1.0, 8, 3, 8},
        WaveletDpCase{ErrorMetric::kSsre, 1.0, 8, 2, 9},
        WaveletDpCase{ErrorMetric::kSae, 1.0, 6, 2, 10},  // padded domain
        WaveletDpCase{ErrorMetric::kMae, 1.0, 5, 3, 11}),
    [](const ::testing::TestParamInfo<WaveletDpCase>& info) {
      return std::string(ErrorMetricName(info.param.metric)) + "_n" +
             std::to_string(info.param.domain) + "_B" +
             std::to_string(info.param.budget) + "_seed" +
             std::to_string(info.param.seed);
    });

TEST(WaveletDp, SseAgreesWithGreedyThresholding) {
  // For the SSE metric the restricted DP must reproduce Theorem 7's greedy
  // optimum exactly.
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 16, .max_support = 3, .max_value = 6, .seed = 41});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  for (std::size_t budget : {1u, 3u, 6u}) {
    auto dp = BuildRestrictedWaveletDp(input, budget, options);
    auto greedy = BuildSseOptimalWavelet(input, budget);
    ASSERT_TRUE(dp.ok() && greedy.ok());
    auto dp_cost = EvaluateWavelet(input, dp->synopsis, options);
    auto greedy_cost = EvaluateWavelet(input, greedy.value(), options);
    ASSERT_TRUE(dp_cost.ok() && greedy_cost.ok());
    EXPECT_NEAR(*dp_cost, *greedy_cost, 1e-8) << "budget " << budget;
  }
}

TEST(WaveletDp, ZeroBudgetEstimatesEverythingAsZero) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto result = BuildRestrictedWaveletDp(input, 0, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->synopsis.num_coefficients(), 0u);
  // Cost = sum_i E|g_i - 0| = sum of expected frequencies.
  double expect = 0.0;
  for (double m : input.ExpectedFrequencies()) expect += m;
  EXPECT_NEAR(result->cost, expect, 1e-9);
}

TEST(WaveletDp, SingleItemDomain) {
  ValuePdfInput input({ValuePdf::PointMass(4.0)});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto result = BuildRestrictedWaveletDp(input, 1, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->synopsis.num_coefficients(), 1u);
  EXPECT_NEAR(result->cost, 0.0, 1e-12);
}

TEST(WaveletDp, RejectsOversizedDomains) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 64, .seed = 1});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto result = BuildRestrictedWaveletDp(input, 4, options, /*max_domain=*/32);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

// Regression for the old hash-memo's rehash-dangling footgun: the
// recursive solver held a reference to the left child's best table while
// computing the right child, and an unordered_map rehash in between left
// it dangling (the historical fix copied the vector per state). This input
// is big enough that the old memo rehashed many times mid-recursion, so a
// reintroduced dangling read would corrupt costs or coefficients; under
// the flat arena, child spans are stable by construction. The check is
// three-way: fast kernel == reference kernel bit-for-bit, and the reported
// cost equals the evaluated cost of the returned synopsis.
TEST(WaveletDp, ArenaSpansStableUnderLargeStateCounts) {
  for (std::size_t domain : {64u, 200u}) {
    ValuePdfInput input = GenerateRandomValuePdf(
        {.domain_size = domain, .max_support = 3, .max_value = 6,
         .seed = domain});
    SynopsisOptions options;
    options.metric = ErrorMetric::kSae;
    auto reference = BuildRestrictedWaveletDp(input, 24, options, 2048,
                                              WaveletSplitKernel::kReference);
    auto fast = BuildRestrictedWaveletDp(input, 24, options);
    ASSERT_TRUE(reference.ok() && fast.ok());
    EXPECT_EQ(reference->cost, fast->cost);
    ASSERT_EQ(reference->synopsis.coefficients().size(),
              fast->synopsis.coefficients().size());
    for (std::size_t i = 0; i < fast->synopsis.coefficients().size(); ++i) {
      EXPECT_EQ(reference->synopsis.coefficients()[i].index,
                fast->synopsis.coefficients()[i].index);
      EXPECT_EQ(reference->synopsis.coefficients()[i].value,
                fast->synopsis.coefficients()[i].value);
    }
    auto evaluated = EvaluateWavelet(input, fast->synopsis, options);
    ASSERT_TRUE(evaluated.ok());
    EXPECT_NEAR(fast->cost, *evaluated, 1e-9) << "n=" << domain;
  }
}

// Zero steady-state allocation: repeat solves through one leased workspace
// must not grow the arena (the pool-stats assertion of the acceptance
// criteria), and reusing the arena must not change any output.
TEST(WaveletDp, WorkspaceReuseAllocatesNoDpState) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 128, .max_support = 3, .max_value = 6, .seed = 77});
  SynopsisOptions options;
  options.metric = ErrorMetric::kMae;

  DpWorkspacePool pool;
  DpWorkspacePool::Lease lease = pool.Acquire();
  DpWorkspace* workspace = lease.get();

  auto first = BuildRestrictedWaveletDp(input, 32, options, 2048,
                                        WaveletSplitKernel::kAuto, workspace);
  ASSERT_TRUE(first.ok());
  const std::size_t grows_after_warmup =
      workspace->wavelet_arena().grow_events;
  EXPECT_GT(grows_after_warmup, 0u);  // the warmup solve sized the arena

  for (int repeat = 0; repeat < 3; ++repeat) {
    auto again = BuildRestrictedWaveletDp(
        input, 32, options, 2048, WaveletSplitKernel::kAuto, workspace);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->cost, first->cost);
    EXPECT_EQ(again->synopsis.coefficients().size(),
              first->synopsis.coefficients().size());
    EXPECT_EQ(workspace->wavelet_arena().grow_events, grows_after_warmup)
        << "repeat solve " << repeat << " grew the arena";
  }

  // Smaller shapes fit the warm arena too: still no growth.
  ValuePdfInput smaller = GenerateRandomValuePdf(
      {.domain_size = 64, .max_support = 3, .max_value = 6, .seed = 78});
  auto small = BuildRestrictedWaveletDp(smaller, 8, options, 2048,
                                        WaveletSplitKernel::kAuto, workspace);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(workspace->wavelet_arena().grow_events, grows_after_warmup);
  EXPECT_EQ(workspace->wavelet_arena().solves, 5u);
}

TEST(WaveletDp, ResultRecordsMemoLayout) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  auto result = BuildRestrictedWaveletDp(input, 2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_STREQ(result->memo, "dense-arena");
}

TEST(WaveletDp, MonotoneInBudget) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 16, .max_support = 3, .max_value = 5, .seed = 55});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSare;
  options.sanity_c = 1.0;
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t budget = 0; budget <= 8; ++budget) {
    auto result = BuildRestrictedWaveletDp(input, budget, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->cost, prev + 1e-12) << "budget " << budget;
    prev = result->cost;
  }
}

}  // namespace
}  // namespace probsyn
