// Workload-aware synopses (the paper's concluding-remarks extension):
// per-item query weights phi_i in every oracle, DP, and evaluator.

#include <limits>

#include <gtest/gtest.h>

#include "core/builders.h"
#include "core/evaluate.h"
#include "core/histogram_dp.h"
#include "core/oracle_factory.h"
#include "core/wavelet_dp.h"
#include "core/wavelet_unrestricted.h"
#include "gen/generators.h"
#include "model/worlds.h"
#include "test_util.h"
#include "util/random.h"

namespace probsyn {
namespace {

std::vector<double> RandomWorkload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> weights(n);
  for (double& w : weights) {
    // Mix of zero, light and heavy weights.
    switch (rng.NextBounded(4)) {
      case 0:
        w = 0.0;
        break;
      case 1:
        w = rng.NextUniform(0.1, 0.5);
        break;
      default:
        w = rng.NextUniform(1.0, 5.0);
        break;
    }
  }
  weights[rng.NextBounded(n)] = 3.0;  // ensure not all zero
  return weights;
}

double WeightedBruteBucketCost(const std::vector<PossibleWorld>& worlds,
                               const std::vector<double>& weights,
                               std::size_t s, std::size_t e, double v,
                               ErrorMetric metric, double c) {
  bool cumulative = IsCumulativeMetric(metric);
  double sum = 0.0, worst = 0.0;
  for (std::size_t i = s; i <= e; ++i) {
    double err =
        weights[i] * testing::EnumeratedItemError(worlds, i, v, metric, c);
    sum += err;
    worst = std::max(worst, err);
  }
  return cumulative ? sum : worst;
}

struct WorkloadCase {
  ErrorMetric metric;
  double c;
  std::uint64_t seed;
};

class WorkloadOracleTest : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadOracleTest, MatchesWeightedBruteForce) {
  const WorkloadCase& param = GetParam();
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 7, .max_support = 3, .max_value = 5,
       .seed = param.seed});
  auto worlds = EnumerateWorlds(input);
  ASSERT_TRUE(worlds.ok());
  std::vector<double> weights = RandomWorkload(7, param.seed * 31 + 1);

  SynopsisOptions options;
  options.metric = param.metric;
  options.sanity_c = param.c;
  options.sse_variant = SseVariant::kFixedRepresentative;
  options.workload = weights;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok()) << bundle.status();

  for (std::size_t s = 0; s < 7; ++s) {
    for (std::size_t e = s; e < 7; ++e) {
      BucketCost got = bundle->oracle->Cost(s, e);
      // Consistency at the reported representative.
      EXPECT_NEAR(got.cost,
                  WeightedBruteBucketCost(worlds.value(), weights, s, e,
                                          got.representative, param.metric,
                                          param.c),
                  1e-8)
          << ErrorMetricName(param.metric) << " [" << s << "," << e << "]";
      // Optimality against a dense candidate grid.
      double best = std::numeric_limits<double>::infinity();
      for (int g = 0; g <= 600; ++g) {
        double v = 6.0 * g / 600.0;
        best = std::min(best,
                        WeightedBruteBucketCost(worlds.value(), weights, s, e,
                                                v, param.metric, param.c));
      }
      EXPECT_LE(got.cost, best + 1e-6)
          << ErrorMetricName(param.metric) << " [" << s << "," << e << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndSeeds, WorkloadOracleTest,
    ::testing::Values(WorkloadCase{ErrorMetric::kSse, 1.0, 1},
                      WorkloadCase{ErrorMetric::kSsre, 0.5, 2},
                      WorkloadCase{ErrorMetric::kSae, 1.0, 3},
                      WorkloadCase{ErrorMetric::kSare, 0.5, 4},
                      WorkloadCase{ErrorMetric::kMae, 1.0, 5},
                      WorkloadCase{ErrorMetric::kMare, 0.5, 6}),
    [](const ::testing::TestParamInfo<WorkloadCase>& info) {
      return std::string(ErrorMetricName(info.param.metric)) + "_seed" +
             std::to_string(info.param.seed);
    });

TEST(Workload, DpOptimalAgainstExhaustiveWeightedSearch) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 8, .max_support = 3, .max_value = 5, .seed = 9});
  std::vector<double> weights = RandomWorkload(8, 77);
  for (ErrorMetric metric : {ErrorMetric::kSse, ErrorMetric::kSae,
                             ErrorMetric::kMare}) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 0.5;
    options.sse_variant = SseVariant::kFixedRepresentative;
    options.workload = weights;
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok());
    HistogramDpResult dp =
        SolveHistogramDp(*bundle->oracle, 3, bundle->combiner);

    double brute = std::numeric_limits<double>::infinity();
    for (std::size_t b = 1; b <= 3; ++b) {
      ForEachBucketization(8, b, [&](const std::vector<std::size_t>& ends) {
        double total = 0.0;
        std::size_t start = 0;
        for (std::size_t end : ends) {
          double cost = bundle->oracle->Cost(start, end).cost;
          total = bundle->combiner == DpCombiner::kSum
                      ? total + cost
                      : std::max(total, cost);
          start = end + 1;
        }
        brute = std::min(brute, total);
      });
    }
    EXPECT_NEAR(dp.OptimalCost(3), brute, 1e-9) << ErrorMetricName(metric);
  }
}

TEST(Workload, EvaluatorAgreesWithDpCost) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 20, .max_support = 3, .max_value = 6, .seed = 13});
  std::vector<double> weights = RandomWorkload(20, 5);
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  options.workload = weights;
  auto builder = HistogramBuilder::Create(input, options, 5);
  ASSERT_TRUE(builder.ok());
  Histogram h = builder->Extract(5);
  auto evaluated = EvaluateHistogram(input, h, options);
  ASSERT_TRUE(evaluated.ok());
  EXPECT_NEAR(*evaluated, builder->OptimalCost(5), 1e-9);
}

TEST(Workload, ZeroWeightRegionsAreFreeToMerge) {
  // Items 8..15 have zero weight: the optimal weighted histogram should
  // spend its buckets entirely on 0..7 and achieve the same cost as if
  // the domain ended at 7.
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 16, .max_support = 3, .max_value = 6, .seed = 4});
  std::vector<double> weights(16, 0.0);
  for (std::size_t i = 0; i < 8; ++i) weights[i] = 1.0;

  SynopsisOptions weighted;
  weighted.metric = ErrorMetric::kSse;
  weighted.sse_variant = SseVariant::kFixedRepresentative;
  weighted.workload = weights;
  auto builder = HistogramBuilder::Create(input, weighted, 4);
  ASSERT_TRUE(builder.ok());

  ValuePdfInput prefix(std::vector<ValuePdf>(input.items().begin(),
                                             input.items().begin() + 8));
  SynopsisOptions uniform;
  uniform.metric = ErrorMetric::kSse;
  uniform.sse_variant = SseVariant::kFixedRepresentative;
  auto prefix_builder = HistogramBuilder::Create(prefix, uniform, 4);
  ASSERT_TRUE(prefix_builder.ok());
  // One bucket may be "wasted" covering the weightless tail, but since a
  // tail bucket is free, the weighted optimum equals the prefix optimum
  // with the same budget.
  EXPECT_NEAR(builder->OptimalCost(4), prefix_builder->OptimalCost(4), 1e-9);
}

TEST(Workload, UniformWorkloadMatchesUnweighted) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 12, .max_support = 3, .max_value = 5, .seed = 8});
  for (ErrorMetric metric : {ErrorMetric::kSsre, ErrorMetric::kSare,
                             ErrorMetric::kMae}) {
    SynopsisOptions plain;
    plain.metric = metric;
    plain.sanity_c = 1.0;
    SynopsisOptions ones = plain;
    ones.workload.assign(12, 1.0);

    auto a = HistogramBuilder::Create(input, plain, 4);
    auto b = HistogramBuilder::Create(input, ones, 4);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_NEAR(a->OptimalCost(4), b->OptimalCost(4), 1e-9)
        << ErrorMetricName(metric);
  }
}

TEST(Workload, RejectsInvalidWorkloads) {
  ValuePdfInput input = testing::PaperExampleValuePdf();
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;

  options.workload = {1.0, -0.5, 1.0};
  EXPECT_FALSE(MakeBucketOracle(input, options).ok());

  options.workload = {0.0, 0.0, 0.0};
  EXPECT_FALSE(MakeBucketOracle(input, options).ok());

  options.workload = {1.0, 1.0};  // wrong size
  EXPECT_FALSE(MakeBucketOracle(input, options).ok());

  options.workload = {1.0, 1.0, 1.0};
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kWorldMean;
  auto result = MakeBucketOracle(input, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(Workload, WaveletDpsHonorWeights) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 8, .max_support = 3, .max_value = 5, .seed = 30});
  std::vector<double> weights = RandomWorkload(8, 41);
  SynopsisOptions options;
  options.metric = ErrorMetric::kSae;
  options.workload = weights;

  auto restricted = BuildRestrictedWaveletDp(input, 3, options);
  ASSERT_TRUE(restricted.ok());
  auto evaluated = EvaluateWavelet(input, restricted->synopsis, options);
  ASSERT_TRUE(evaluated.ok());
  EXPECT_NEAR(restricted->cost, *evaluated, 1e-9);

  auto unrestricted =
      BuildUnrestrictedWaveletDp(input, 3, options, {.grid_points = 21});
  ASSERT_TRUE(unrestricted.ok());
  auto eval_u = EvaluateWavelet(input, unrestricted->synopsis, options);
  ASSERT_TRUE(eval_u.ok());
  EXPECT_NEAR(unrestricted->cost, *eval_u, 1e-9);
}

TEST(Workload, SkewedWorkloadShiftsBucketBoundaries) {
  // All query mass on the right half: the weighted histogram should spend
  // more boundaries there than the uniform one.
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 32, .max_support = 4, .max_value = 8, .seed = 3});
  std::vector<double> weights(32, 0.01);
  for (std::size_t i = 16; i < 32; ++i) weights[i] = 10.0;

  SynopsisOptions uniform;
  uniform.metric = ErrorMetric::kSse;
  uniform.sse_variant = SseVariant::kFixedRepresentative;
  SynopsisOptions skewed = uniform;
  skewed.workload = weights;

  auto u = BuildOptimalHistogram(input, uniform, 6);
  auto s = BuildOptimalHistogram(input, skewed, 6);
  ASSERT_TRUE(u.ok() && s.ok());
  auto boundaries_right = [](const Histogram& h) {
    std::size_t count = 0;
    for (const HistogramBucket& b : h.buckets()) {
      if (b.start >= 16) ++count;
    }
    return count;
  };
  EXPECT_GE(boundaries_right(s.value()), boundaries_right(u.value()));

  // And it must do at least as well under the weighted objective.
  auto cost_s = EvaluateHistogram(input, s.value(), skewed);
  auto cost_u = EvaluateHistogram(input, u.value(), skewed);
  ASSERT_TRUE(cost_s.ok() && cost_u.ok());
  EXPECT_LE(*cost_s, *cost_u + 1e-9);
}

}  // namespace
}  // namespace probsyn
