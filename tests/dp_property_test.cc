// Property tests for the histogram DP at sizes where exhaustive search is
// infeasible: local optimality under boundary perturbation, consistency
// between DP costs and independent evaluation, and approximation
// guarantees across seeds.

#include <gtest/gtest.h>

#include "core/builders.h"
#include "core/evaluate.h"
#include "core/histogram_dp.h"
#include "core/oracle_factory.h"
#include "gen/generators.h"
#include "model/induced.h"

namespace probsyn {
namespace {

double HistogramCostUnderOracle(const BucketCostOracle& oracle,
                                DpCombiner combiner, const Histogram& h) {
  double total = 0.0;
  for (const HistogramBucket& b : h.buckets()) {
    double cost = oracle.Cost(b.start, b.end).cost;
    total = combiner == DpCombiner::kSum ? total + cost
                                         : std::max(total, cost);
  }
  return total;
}

struct PropertyCase {
  ErrorMetric metric;
  double c;
  std::uint64_t seed;
};

class DpLocalOptimalityTest : public ::testing::TestWithParam<PropertyCase> {};

// Moving any single bucket boundary by one item must not improve the
// optimum — a necessary condition that exercises n far beyond what the
// exhaustive oracle can cover.
TEST_P(DpLocalOptimalityTest, BoundaryPerturbationNeverImproves) {
  const PropertyCase& param = GetParam();
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 48, .max_support = 4, .max_value = 7,
       .seed = param.seed});
  SynopsisOptions options;
  options.metric = param.metric;
  options.sanity_c = param.c;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  HistogramDpResult dp = SolveHistogramDp(*bundle->oracle, 8, bundle->combiner);
  Histogram h = dp.ExtractHistogram(8);
  double base = HistogramCostUnderOracle(*bundle->oracle, bundle->combiner, h);
  EXPECT_NEAR(base, dp.OptimalCost(8), 1e-8);

  std::vector<HistogramBucket> buckets = h.buckets();
  for (std::size_t k = 0; k + 1 < buckets.size(); ++k) {
    for (int delta : {-1, +1}) {
      std::vector<HistogramBucket> tweaked = buckets;
      // Shift the boundary between buckets k and k+1.
      std::int64_t end = static_cast<std::int64_t>(tweaked[k].end) + delta;
      if (end < static_cast<std::int64_t>(tweaked[k].start) ||
          end + 1 > static_cast<std::int64_t>(tweaked[k + 1].end)) {
        continue;  // perturbation would empty a bucket
      }
      tweaked[k].end = static_cast<std::size_t>(end);
      tweaked[k + 1].start = static_cast<std::size_t>(end) + 1;
      Histogram candidate(tweaked);
      ASSERT_TRUE(candidate.Validate(48).ok());
      double cost = HistogramCostUnderOracle(*bundle->oracle,
                                             bundle->combiner, candidate);
      EXPECT_GE(cost, base - 1e-9)
          << ErrorMetricName(param.metric) << " boundary " << k << " delta "
          << delta;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndSeeds, DpLocalOptimalityTest,
    ::testing::Values(PropertyCase{ErrorMetric::kSse, 1.0, 1},
                      PropertyCase{ErrorMetric::kSse, 1.0, 21},
                      PropertyCase{ErrorMetric::kSsre, 0.5, 2},
                      PropertyCase{ErrorMetric::kSsre, 1.0, 22},
                      PropertyCase{ErrorMetric::kSae, 1.0, 3},
                      PropertyCase{ErrorMetric::kSae, 1.0, 23},
                      PropertyCase{ErrorMetric::kSare, 0.5, 4},
                      PropertyCase{ErrorMetric::kSare, 1.0, 24},
                      PropertyCase{ErrorMetric::kMae, 1.0, 5},
                      PropertyCase{ErrorMetric::kMare, 0.5, 6}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return std::string(ErrorMetricName(info.param.metric)) + "_seed" +
             std::to_string(info.param.seed);
    });

// The DP's reported optimum must agree with the fully independent
// evaluator for every per-item-decomposable metric (this ties together the
// oracle precomputations, the DP transitions, the traceback and the
// evaluation tables).
class DpEvaluationConsistencyTest
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(DpEvaluationConsistencyTest, DpCostEqualsEvaluatedCost) {
  const PropertyCase& param = GetParam();
  TuplePdfInput input = GenerateRandomTuplePdf(
      {.domain_size = 32, .num_tuples = 96, .max_alternatives = 4,
       .seed = param.seed});
  SynopsisOptions options;
  options.metric = param.metric;
  options.sanity_c = param.c;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto builder = HistogramBuilder::Create(input, options, 6);
  ASSERT_TRUE(builder.ok());
  for (std::size_t b : {1u, 2u, 4u, 6u}) {
    Histogram h = builder->Extract(b);
    auto evaluated = EvaluateHistogram(input, h, options);
    ASSERT_TRUE(evaluated.ok());
    EXPECT_NEAR(*evaluated, builder->OptimalCost(b), 1e-8)
        << ErrorMetricName(param.metric) << " B=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndSeeds, DpEvaluationConsistencyTest,
    ::testing::Values(PropertyCase{ErrorMetric::kSse, 1.0, 7},
                      PropertyCase{ErrorMetric::kSsre, 0.5, 8},
                      PropertyCase{ErrorMetric::kSae, 1.0, 9},
                      PropertyCase{ErrorMetric::kSare, 1.0, 10},
                      PropertyCase{ErrorMetric::kMae, 1.0, 11},
                      PropertyCase{ErrorMetric::kMare, 0.5, 12}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return std::string(ErrorMetricName(info.param.metric)) + "_seed" +
             std::to_string(info.param.seed);
    });

// The (1+eps) guarantee must hold across many random inputs, not just the
// one exhaustive case.
class ApproxGuaranteeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxGuaranteeTest, HoldsOnRandomInputs) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 100, .max_support = 4, .max_value = 9,
       .seed = GetParam()});
  const double kEps = 0.2;
  for (ErrorMetric metric : {ErrorMetric::kSse, ErrorMetric::kSare}) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 1.0;
    options.sse_variant = SseVariant::kFixedRepresentative;
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok());
    HistogramDpResult exact =
        SolveHistogramDp(*bundle->oracle, 7, bundle->combiner);
    auto approx = SolveApproxHistogramDp(*bundle->oracle, 7, kEps);
    ASSERT_TRUE(approx.ok());
    EXPECT_LE(approx->cost, (1.0 + kEps) * exact.OptimalCost(7) + 1e-9)
        << ErrorMetricName(metric) << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxGuaranteeTest,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38));

// Cross-model consistency: the basic model, its tuple-pdf embedding, and
// its induced value pdf must all produce the same optimal histograms for
// per-item-decomposable metrics.
TEST(DpCrossModel, BasicTupleAndInducedAgree) {
  BasicModelInput basic = GenerateMovieLinkage({.domain_size = 40, .seed = 3});
  auto tuple_pdf = basic.ToTuplePdf();
  ASSERT_TRUE(tuple_pdf.ok());
  auto induced = InduceValuePdf(basic);
  ASSERT_TRUE(induced.ok());

  for (ErrorMetric metric : {ErrorMetric::kSsre, ErrorMetric::kSae,
                             ErrorMetric::kMare}) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 0.5;
    auto from_tuple = HistogramBuilder::Create(tuple_pdf.value(), options, 5);
    auto from_value = HistogramBuilder::Create(induced.value(), options, 5);
    ASSERT_TRUE(from_tuple.ok() && from_value.ok());
    for (std::size_t b = 1; b <= 5; ++b) {
      EXPECT_NEAR(from_tuple->OptimalCost(b), from_value->OptimalCost(b),
                  1e-9)
          << ErrorMetricName(metric) << " B=" << b;
    }
  }
}

}  // namespace
}  // namespace probsyn
