// Property tests for the histogram DP at sizes where exhaustive search is
// infeasible: local optimality under boundary perturbation, consistency
// between DP costs and independent evaluation, and approximation
// guarantees across seeds.

#include <gtest/gtest.h>

#include "core/builders.h"
#include "core/dp_kernels.h"
#include "core/evaluate.h"
#include "core/histogram_dp.h"
#include "core/oracle_factory.h"
#include "gen/generators.h"
#include "model/induced.h"
#include "stream/streaming_histogram.h"

namespace probsyn {
namespace {

double HistogramCostUnderOracle(const BucketCostOracle& oracle,
                                DpCombiner combiner, const Histogram& h) {
  double total = 0.0;
  for (const HistogramBucket& b : h.buckets()) {
    double cost = oracle.Cost(b.start, b.end).cost;
    total = combiner == DpCombiner::kSum ? total + cost
                                         : std::max(total, cost);
  }
  return total;
}

struct PropertyCase {
  ErrorMetric metric;
  double c;
  std::uint64_t seed;
};

class DpLocalOptimalityTest : public ::testing::TestWithParam<PropertyCase> {};

// Moving any single bucket boundary by one item must not improve the
// optimum — a necessary condition that exercises n far beyond what the
// exhaustive oracle can cover.
TEST_P(DpLocalOptimalityTest, BoundaryPerturbationNeverImproves) {
  const PropertyCase& param = GetParam();
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 48, .max_support = 4, .max_value = 7,
       .seed = param.seed});
  SynopsisOptions options;
  options.metric = param.metric;
  options.sanity_c = param.c;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  HistogramDpResult dp = SolveHistogramDp(*bundle->oracle, 8, bundle->combiner);
  Histogram h = dp.ExtractHistogram(8);
  double base = HistogramCostUnderOracle(*bundle->oracle, bundle->combiner, h);
  EXPECT_NEAR(base, dp.OptimalCost(8), 1e-8);

  std::vector<HistogramBucket> buckets = h.buckets();
  for (std::size_t k = 0; k + 1 < buckets.size(); ++k) {
    for (int delta : {-1, +1}) {
      std::vector<HistogramBucket> tweaked = buckets;
      // Shift the boundary between buckets k and k+1.
      std::int64_t end = static_cast<std::int64_t>(tweaked[k].end) + delta;
      if (end < static_cast<std::int64_t>(tweaked[k].start) ||
          end + 1 > static_cast<std::int64_t>(tweaked[k + 1].end)) {
        continue;  // perturbation would empty a bucket
      }
      tweaked[k].end = static_cast<std::size_t>(end);
      tweaked[k + 1].start = static_cast<std::size_t>(end) + 1;
      Histogram candidate(tweaked);
      ASSERT_TRUE(candidate.Validate(48).ok());
      double cost = HistogramCostUnderOracle(*bundle->oracle,
                                             bundle->combiner, candidate);
      EXPECT_GE(cost, base - 1e-9)
          << ErrorMetricName(param.metric) << " boundary " << k << " delta "
          << delta;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndSeeds, DpLocalOptimalityTest,
    ::testing::Values(PropertyCase{ErrorMetric::kSse, 1.0, 1},
                      PropertyCase{ErrorMetric::kSse, 1.0, 21},
                      PropertyCase{ErrorMetric::kSsre, 0.5, 2},
                      PropertyCase{ErrorMetric::kSsre, 1.0, 22},
                      PropertyCase{ErrorMetric::kSae, 1.0, 3},
                      PropertyCase{ErrorMetric::kSae, 1.0, 23},
                      PropertyCase{ErrorMetric::kSare, 0.5, 4},
                      PropertyCase{ErrorMetric::kSare, 1.0, 24},
                      PropertyCase{ErrorMetric::kMae, 1.0, 5},
                      PropertyCase{ErrorMetric::kMare, 0.5, 6}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return std::string(ErrorMetricName(info.param.metric)) + "_seed" +
             std::to_string(info.param.seed);
    });

// The DP's reported optimum must agree with the fully independent
// evaluator for every per-item-decomposable metric (this ties together the
// oracle precomputations, the DP transitions, the traceback and the
// evaluation tables).
class DpEvaluationConsistencyTest
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(DpEvaluationConsistencyTest, DpCostEqualsEvaluatedCost) {
  const PropertyCase& param = GetParam();
  TuplePdfInput input = GenerateRandomTuplePdf(
      {.domain_size = 32, .num_tuples = 96, .max_alternatives = 4,
       .seed = param.seed});
  SynopsisOptions options;
  options.metric = param.metric;
  options.sanity_c = param.c;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto builder = HistogramBuilder::Create(input, options, 6);
  ASSERT_TRUE(builder.ok());
  for (std::size_t b : {1u, 2u, 4u, 6u}) {
    Histogram h = builder->Extract(b);
    auto evaluated = EvaluateHistogram(input, h, options);
    ASSERT_TRUE(evaluated.ok());
    EXPECT_NEAR(*evaluated, builder->OptimalCost(b), 1e-8)
        << ErrorMetricName(param.metric) << " B=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndSeeds, DpEvaluationConsistencyTest,
    ::testing::Values(PropertyCase{ErrorMetric::kSse, 1.0, 7},
                      PropertyCase{ErrorMetric::kSsre, 0.5, 8},
                      PropertyCase{ErrorMetric::kSae, 1.0, 9},
                      PropertyCase{ErrorMetric::kSare, 1.0, 10},
                      PropertyCase{ErrorMetric::kMae, 1.0, 11},
                      PropertyCase{ErrorMetric::kMare, 0.5, 12}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return std::string(ErrorMetricName(info.param.metric)) + "_seed" +
             std::to_string(info.param.seed);
    });

// The (1+eps) guarantee must hold across many random inputs, not just the
// one exhaustive case.
class ApproxGuaranteeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxGuaranteeTest, HoldsOnRandomInputs) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 100, .max_support = 4, .max_value = 9,
       .seed = GetParam()});
  const double kEps = 0.2;
  for (ErrorMetric metric : {ErrorMetric::kSse, ErrorMetric::kSare}) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 1.0;
    options.sse_variant = SseVariant::kFixedRepresentative;
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok());
    HistogramDpResult exact =
        SolveHistogramDp(*bundle->oracle, 7, bundle->combiner);
    auto approx = SolveApproxHistogramDp(*bundle->oracle, 7, kEps);
    ASSERT_TRUE(approx.ok());
    EXPECT_LE(approx->cost, (1.0 + kEps) * exact.OptimalCost(7) + 1e-9)
        << ErrorMetricName(metric) << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxGuaranteeTest,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38));

// --- Randomized differential sweep: streaming vs offline DP vs chains. ---
//
// A seeded generator sweep (200 cases: 8 blocks x 25 seeds) that
// cross-checks, per case,
//   (1) the streaming builder against the OFFLINE exact DP run through
//       BOTH the reference oracle path and the specialized kernel path
//       (the two offline solvers must agree bit-for-bit; the stream must
//       land in [opt, (1 + eps) opt]),
//   (2) the persistent-chain point-cost builder against the old
//       copy-based-chain reference builder, bit-for-bit (costs, bucket
//       boundaries, representatives, breakpoint counts), and
//   (3) the reported stream cost against the independent evaluator.
// Shapes (n, B, eps) are derived from the seed so the sweep covers the
// B = 1 and tiny-epsilon corners as well as wide buckets and loose slack.

class StreamingDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingDifferentialTest, StreamMatchesOfflineDpAndCopyChains) {
  constexpr std::uint64_t kSeedsPerBlock = 25;
  const double kEpsilons[] = {0.05, 0.1, 0.25, 0.5, 1.0};
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;

  StreamChainStore shared_store;  // leak check across the whole block
  for (std::uint64_t k = 0; k < kSeedsPerBlock; ++k) {
    const std::uint64_t seed = GetParam() * kSeedsPerBlock + k + 1;
    const std::size_t n = 40 + (seed * 7919) % 160;
    const std::size_t buckets = 1 + (seed * 104729) % 12;
    const double eps = kEpsilons[seed % 5];
    ValuePdfInput input = GenerateRandomValuePdf(
        {.domain_size = n, .max_support = 4, .max_value = 9, .seed = seed});

    StreamingHistogramBuilder reference(buckets, eps,
                                        StreamingKernel::kReference);
    StreamingHistogramBuilder fast(buckets, eps, StreamingKernel::kPointCost,
                                   &shared_store);
    for (const ValuePdf& pdf : input.items()) {
      reference.Push(pdf);
      fast.Push(pdf);
    }
    auto want = reference.Finish();
    auto got = fast.Finish();
    ASSERT_TRUE(want.ok() && got.ok()) << "seed " << seed;

    // (2) Persistent chains == copy-based chains, bit-for-bit.
    EXPECT_EQ(want->cost, got->cost) << "seed " << seed;
    EXPECT_EQ(want->peak_breakpoints, got->peak_breakpoints)
        << "seed " << seed;
    ASSERT_EQ(want->histogram.num_buckets(), got->histogram.num_buckets())
        << "seed " << seed;
    for (std::size_t i = 0; i < want->histogram.num_buckets(); ++i) {
      const HistogramBucket& a = want->histogram.buckets()[i];
      const HistogramBucket& b = got->histogram.buckets()[i];
      EXPECT_EQ(a.start, b.start) << "seed " << seed << " bucket " << i;
      EXPECT_EQ(a.end, b.end) << "seed " << seed << " bucket " << i;
      EXPECT_EQ(a.representative, b.representative)
          << "seed " << seed << " bucket " << i;
    }

    // (3) The reported cost is the exact expected SSE of the histogram.
    auto evaluated = EvaluateHistogram(input, got->histogram, options);
    ASSERT_TRUE(evaluated.ok()) << "seed " << seed;
    EXPECT_NEAR(*evaluated, got->cost, 1e-7) << "seed " << seed;

    // (1) Offline optimum, solved through the reference oracle path AND
    // the specialized kernel path — they must agree exactly, and bound
    // the stream.
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok()) << "seed " << seed;
    HistogramDpResult ref_dp = SolveHistogramDpWithKernel(
        *bundle->oracle, buckets, bundle->combiner,
        {.kernel = DpKernelKind::kReference});
    DpWorkspace workspace;
    HistogramDpResult fast_dp = SolveHistogramDpWithKernel(
        *bundle->oracle, buckets, bundle->combiner,
        {.workspace = &workspace, .kernel = DpKernelKind::kAuto});
    const double opt = ref_dp.OptimalCost(buckets);
    EXPECT_EQ(opt, fast_dp.OptimalCost(buckets)) << "seed " << seed;
    EXPECT_GE(got->cost, opt - 1e-9) << "seed " << seed;
    EXPECT_LE(got->cost, (1.0 + eps) * opt + 1e-6)
        << "seed " << seed << " n=" << n << " B=" << buckets
        << " eps=" << eps;
  }
  // Every builder in the block released its chains on destruction.
  EXPECT_EQ(shared_store.stats().live, 0u);
}

INSTANTIATE_TEST_SUITE_P(Blocks, StreamingDifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 8));

// Cross-model consistency: the basic model, its tuple-pdf embedding, and
// its induced value pdf must all produce the same optimal histograms for
// per-item-decomposable metrics.
TEST(DpCrossModel, BasicTupleAndInducedAgree) {
  BasicModelInput basic = GenerateMovieLinkage({.domain_size = 40, .seed = 3});
  auto tuple_pdf = basic.ToTuplePdf();
  ASSERT_TRUE(tuple_pdf.ok());
  auto induced = InduceValuePdf(basic);
  ASSERT_TRUE(induced.ok());

  for (ErrorMetric metric : {ErrorMetric::kSsre, ErrorMetric::kSae,
                             ErrorMetric::kMare}) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 0.5;
    auto from_tuple = HistogramBuilder::Create(tuple_pdf.value(), options, 5);
    auto from_value = HistogramBuilder::Create(induced.value(), options, 5);
    ASSERT_TRUE(from_tuple.ok() && from_value.ok());
    for (std::size_t b = 1; b <= 5; ++b) {
      EXPECT_NEAR(from_tuple->OptimalCost(b), from_value->OptimalCost(b),
                  1e-9)
          << ErrorMetricName(metric) << " B=" << b;
    }
  }
}

}  // namespace
}  // namespace probsyn
