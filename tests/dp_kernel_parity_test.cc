// Kernel/reference parity: every specialized DP kernel (core/dp_kernels.h)
// must be BIT-identical to the reference scalar solver — err rows, choice
// rows (traceback ties included), and cached representatives — across every
// oracle type x {kSum, kMax} x budgets, sequentially and in the blocked
// parallel form, with and without workspace reuse. This pins down the
// tentpole guarantee that the kernels only change speed, never answers.

#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <vector>

#include "core/dp_kernels.h"
#include "core/histogram_dp.h"
#include "core/oracle_factory.h"
#include "engine/synopsis_engine.h"
#include "gen/generators.h"
#include "model/value_pdf.h"
#include "util/thread_pool.h"

namespace probsyn {
namespace {

constexpr ErrorMetric kAllMetrics[] = {
    ErrorMetric::kSse,  ErrorMetric::kSsre, ErrorMetric::kSae,
    ErrorMetric::kSare, ErrorMetric::kMae,  ErrorMetric::kMare};

// Exact (bitwise) table equality: EXPECT_EQ on doubles is ==, which is the
// contract — not "close enough".
void ExpectBitIdenticalTables(const HistogramDpResult& expected,
                              const HistogramDpResult& actual,
                              const std::string& label) {
  ASSERT_EQ(expected.domain_size(), actual.domain_size()) << label;
  ASSERT_EQ(expected.table_layers(), actual.table_layers()) << label;
  const std::size_t n = expected.domain_size();
  for (std::size_t b = 1; b <= expected.table_layers(); ++b) {
    auto err_e = expected.ErrorRow(b);
    auto err_a = actual.ErrorRow(b);
    auto cho_e = expected.ChoiceRow(b);
    auto cho_a = actual.ChoiceRow(b);
    auto rep_e = expected.RepresentativeRow(b);
    auto rep_a = actual.RepresentativeRow(b);
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(err_e[j], err_a[j]) << label << " err b=" << b << " j=" << j;
      ASSERT_EQ(cho_e[j], cho_a[j]) << label << " choice b=" << b
                                    << " j=" << j;
      ASSERT_EQ(rep_e[j], rep_a[j]) << label << " rep b=" << b << " j=" << j;
    }
  }
}

// Solves with the reference scalar kernel and with the specialized kernel
// (sequentially, in parallel, and through a reused workspace) and demands
// bitwise equality everywhere.
void CheckKernelParity(const BucketCostOracle& oracle, DpCombiner combiner,
                       std::size_t max_buckets, const std::string& label) {
  DpKernelOptions reference_options;
  reference_options.kernel = DpKernelKind::kReference;
  HistogramDpResult reference = SolveHistogramDpWithKernel(
      oracle, max_buckets, combiner, reference_options);

  const DpKernelKind kind = SelectDpKernel(oracle);

  DpKernelOptions kernel_options;
  kernel_options.kernel = kind;
  HistogramDpResult kernel =
      SolveHistogramDpWithKernel(oracle, max_buckets, combiner,
                                 kernel_options);
  EXPECT_EQ(kernel.kernel(), kind);
  ExpectBitIdenticalTables(reference, kernel, label + "/sequential");

  ThreadPool pool(3);
  DpKernelOptions parallel_options;
  parallel_options.kernel = kind;
  parallel_options.pool = &pool;
  HistogramDpResult parallel = SolveHistogramDpWithKernel(
      oracle, max_buckets, combiner, parallel_options);
  ExpectBitIdenticalTables(reference, parallel, label + "/parallel");

  DpWorkspace workspace;
  DpKernelOptions reuse_options;
  reuse_options.kernel = kind;
  reuse_options.workspace = &workspace;
  {
    // Dirty the workspace with an unrelated solve (different budget), then
    // reuse it: stale storage must not leak into the result.
    HistogramDpResult scratch = SolveHistogramDpWithKernel(
        oracle, std::max<std::size_t>(1, max_buckets / 2), combiner,
        reuse_options);
    (void)scratch;
  }
  HistogramDpResult reused = SolveHistogramDpWithKernel(
      oracle, max_buckets, combiner, reuse_options);
  ExpectBitIdenticalTables(reference, reused, label + "/workspace-reuse");
}

struct ParityCase {
  ErrorMetric metric;
  SseVariant variant;
  double c;
  std::uint64_t seed;
  bool weighted;
};

std::string ParityCaseName(const ::testing::TestParamInfo<ParityCase>& info) {
  std::string name = ErrorMetricName(info.param.metric);
  if (info.param.metric == ErrorMetric::kSse &&
      info.param.variant == SseVariant::kWorldMean) {
    name += "wm";
  }
  if (info.param.weighted) name += "weighted";
  return name + "_seed" + std::to_string(info.param.seed);
}

class DpKernelParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(DpKernelParityTest, BitIdenticalAcrossCombinersAndBudgets) {
  const ParityCase& param = GetParam();
  const std::size_t kDomain = 64;
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = kDomain, .max_support = 4, .max_value = 8,
       .seed = param.seed});
  SynopsisOptions options;
  options.metric = param.metric;
  options.sanity_c = param.c;
  options.sse_variant = param.variant;
  if (param.weighted) {
    // A zero-weight stretch exercises the oracles' "workload ignores the
    // bucket" branches; ties abound there.
    options.workload.assign(kDomain, 1.0);
    for (std::size_t i = 10; i < 30; ++i) options.workload[i] = 0.0;
    for (std::size_t i = 40; i < kDomain; ++i) options.workload[i] = 2.5;
  }
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  EXPECT_EQ(bundle->kernel, SelectDpKernel(*bundle->oracle));

  for (DpCombiner combiner : {DpCombiner::kSum, DpCombiner::kMax}) {
    for (std::size_t budget : {std::size_t{1}, std::size_t{5}, kDomain}) {
      std::string label = std::string(ErrorMetricName(param.metric)) +
                          (combiner == DpCombiner::kSum ? "/sum" : "/max") +
                          "/B=" + std::to_string(budget);
      CheckKernelParity(*bundle->oracle, combiner, budget, label);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OraclesAndSeeds, DpKernelParityTest,
    ::testing::Values(
        ParityCase{ErrorMetric::kSse, SseVariant::kFixedRepresentative, 1.0,
                   101, false},
        ParityCase{ErrorMetric::kSse, SseVariant::kWorldMean, 1.0, 102,
                   false},
        ParityCase{ErrorMetric::kSse, SseVariant::kFixedRepresentative, 1.0,
                   103, true},
        ParityCase{ErrorMetric::kSsre, SseVariant::kWorldMean, 0.5, 104,
                   false},
        ParityCase{ErrorMetric::kSsre, SseVariant::kWorldMean, 1.0, 105,
                   true},
        ParityCase{ErrorMetric::kSae, SseVariant::kWorldMean, 1.0, 106,
                   false},
        ParityCase{ErrorMetric::kSae, SseVariant::kWorldMean, 1.0, 107,
                   true},
        ParityCase{ErrorMetric::kSare, SseVariant::kWorldMean, 0.5, 108,
                   false},
        ParityCase{ErrorMetric::kMae, SseVariant::kWorldMean, 1.0, 109,
                   false},
        ParityCase{ErrorMetric::kMae, SseVariant::kWorldMean, 1.0, 110,
                   true},
        ParityCase{ErrorMetric::kMare, SseVariant::kWorldMean, 0.5, 111,
                   false}),
    ParityCaseName);

TEST(DpKernelParity, TupleSseWorldMeanSweepKernel) {
  TuplePdfInput input = GenerateRandomTuplePdf(
      {.domain_size = 48, .num_tuples = 120, .max_alternatives = 4,
       .seed = 201});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kWorldMean;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle->kernel, DpKernelKind::kTupleSse);
  for (DpCombiner combiner : {DpCombiner::kSum, DpCombiner::kMax}) {
    CheckKernelParity(*bundle->oracle, combiner, 48,
                      combiner == DpCombiner::kSum ? "tuple/sum"
                                                   : "tuple/max");
  }
}

// Tie-heavy inputs: constant and block-constant point masses yield large
// zero-cost plateaus, so many (budget, column) cells have many minimizing
// splits — exactly where a pruned/vectorized argmin could legally-looking
// diverge from the reference's first-attaining-split rule.
TEST(DpKernelParity, TieHeavyPlateausBreakTiesIdentically) {
  std::vector<ValuePdf> pdfs;
  for (std::size_t i = 0; i < 96; ++i) {
    pdfs.push_back(ValuePdf::PointMass(1.0 + static_cast<double>(i / 24)));
  }
  ValuePdfInput input(std::move(pdfs));
  for (ErrorMetric metric :
       {ErrorMetric::kSse, ErrorMetric::kSae, ErrorMetric::kMae}) {
    SynopsisOptions options;
    options.metric = metric;
    options.sse_variant = SseVariant::kFixedRepresentative;
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok());
    for (DpCombiner combiner : {DpCombiner::kSum, DpCombiner::kMax}) {
      CheckKernelParity(*bundle->oracle, combiner, 96,
                        std::string("plateau/") + ErrorMetricName(metric));
    }
  }
}

// Catastrophic-cancellation regression: near-constant large-magnitude
// frequencies make the computed SSE bucket cost (sum E[g^2] minus a huge
// near-equal square) non-monotone in the split point at the ~1e-4 level
// (amplified by ClampTinyNegative's asymmetric clamp). A raw
// monotone-split bisection returns a wrong argmin here; the bound-verified
// kMax cell must not.
TEST(DpKernelParity, CancellationBreaksMonotonicityButNotParity) {
  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> jitter(-1e-3, 1e-3);
  std::vector<ValuePdf> pdfs;
  for (std::size_t i = 0; i < 640; ++i) {
    pdfs.push_back(ValuePdf::PointMass(1e6 + jitter(rng)));
  }
  ValuePdfInput input(std::move(pdfs));
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  for (DpCombiner combiner : {DpCombiner::kSum, DpCombiner::kMax}) {
    for (std::size_t budget : {std::size_t{8}, std::size_t{64}}) {
      CheckKernelParity(*bundle->oracle, combiner, budget,
                        std::string("cancellation/") +
                            (combiner == DpCombiner::kSum ? "sum" : "max") +
                            "/B=" + std::to_string(budget));
    }
  }
}

// A domain larger than the fast kSum cell's chunk (512) exercises the
// cross-chunk minimum bookkeeping, and larger than the parallel path's
// block size exercises multi-block scheduling.
TEST(DpKernelParity, LargeDomainCrossesChunkAndBlockBoundaries) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 1200, .max_support = 3, .max_value = 6, .seed = 301});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  for (DpCombiner combiner : {DpCombiner::kSum, DpCombiner::kMax}) {
    CheckKernelParity(*bundle->oracle, combiner, 12,
                      combiner == DpCombiner::kSum ? "large/sum"
                                                   : "large/max");
  }
}

TEST(DpKernelParity, ExtractedHistogramsMatchReference) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 80, .max_support = 4, .max_value = 7, .seed = 401});
  for (ErrorMetric metric : kAllMetrics) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 0.5;
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok());

    DpKernelOptions reference_options;
    reference_options.kernel = DpKernelKind::kReference;
    HistogramDpResult reference = SolveHistogramDpWithKernel(
        *bundle->oracle, 12, bundle->combiner, reference_options);
    HistogramDpResult kernel =
        SolveHistogramDp(*bundle->oracle, 12, bundle->combiner);
    for (std::size_t b = 1; b <= 12; ++b) {
      Histogram expected = reference.ExtractHistogram(b);
      Histogram actual = kernel.ExtractHistogram(b);
      EXPECT_TRUE(expected == actual)
          << ErrorMetricName(metric) << " B=" << b;
      // Cached representatives must equal fresh oracle calls (what the
      // pre-kernel extraction used to do).
      for (const HistogramBucket& bucket : actual.buckets()) {
        EXPECT_EQ(bucket.representative,
                  bundle->oracle->Cost(bucket.start, bucket.end)
                      .representative)
            << ErrorMetricName(metric) << " B=" << b;
      }
    }
  }
}

TEST(DpKernelSelection, FactoryKnowsEveryKernel) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 16, .seed = 7});
  for (ErrorMetric metric : kAllMetrics) {
    SynopsisOptions options;
    options.metric = metric;
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok());
    EXPECT_NE(bundle->kernel, DpKernelKind::kReference)
        << ErrorMetricName(metric) << " should have a specialized kernel";
    EXPECT_EQ(bundle->kernel, SelectDpKernel(*bundle->oracle))
        << ErrorMetricName(metric);
  }
}

TEST(DpWorkspacePoolTest, LeasesAreExclusiveAndRecycled) {
  DpWorkspacePool pool;
  DpWorkspace* first = nullptr;
  {
    auto lease_a = pool.Acquire();
    auto lease_b = pool.Acquire();
    EXPECT_NE(lease_a.get(), nullptr);
    EXPECT_NE(lease_b.get(), nullptr);
    EXPECT_NE(lease_a.get(), lease_b.get());
    first = lease_a.get();
  }
  // Returned workspaces are handed out again instead of reallocated.
  auto lease_c = pool.Acquire();
  auto lease_d = pool.Acquire();
  EXPECT_TRUE(lease_c.get() == first || lease_d.get() == first);
}

TEST(EngineKernelIntegration, SolverStringRecordsChosenKernel) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 32, .seed = 9});
  SynopsisEngine engine({.parallelism = 1});
  SynopsisRequest request;
  request.kind = SynopsisKind::kHistogram;
  request.method = HistogramMethod::kOptimal;
  request.budget = 4;
  request.options.metric = ErrorMetric::kSse;
  auto result = engine.Build(input, request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->solver.find("kernel=sse-moment"), std::string::npos)
      << result->solver;

  request.options.metric = ErrorMetric::kMae;
  result = engine.Build(input, request);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->solver.find("kernel=max-error"), std::string::npos)
      << result->solver;
}

// Batches mixing MAE and MARE share one PointErrorTables build; repeated
// batches reuse the engine's leased workspace. Neither may change answers.
TEST(EngineKernelIntegration, RepeatedMixedBatchesStayBitIdentical) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 40, .seed = 15});
  SynopsisEngine engine({.parallelism = 1});
  std::vector<SynopsisRequest> requests;
  for (ErrorMetric metric : {ErrorMetric::kMae, ErrorMetric::kMare,
                             ErrorMetric::kSse, ErrorMetric::kSae}) {
    SynopsisRequest request;
    request.kind = SynopsisKind::kHistogram;
    request.method = HistogramMethod::kOptimal;
    request.budget = 6;
    request.options.metric = metric;
    request.options.sanity_c = 1.0;
    requests.push_back(request);
  }
  auto first = engine.BuildBatch(input, requests);
  ASSERT_TRUE(first.ok()) << first.status();
  // Second run reuses the leased workspace (and the fresh tables cache).
  auto second = engine.BuildBatch(input, requests);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (std::size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].cost, (*second)[i].cost) << i;
    EXPECT_TRUE((*first)[i].histogram == (*second)[i].histogram) << i;
  }
  // And both equal the direct solver.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto bundle = MakeBucketOracle(input, requests[i].options);
    ASSERT_TRUE(bundle.ok());
    HistogramDpResult dp =
        SolveHistogramDp(*bundle->oracle, 6, bundle->combiner);
    EXPECT_EQ((*first)[i].cost, dp.OptimalCost(6)) << i;
    EXPECT_TRUE((*first)[i].histogram == dp.ExtractHistogram(6)) << i;
  }
}

}  // namespace
}  // namespace probsyn
