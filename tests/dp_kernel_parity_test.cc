// Kernel/reference parity: every specialized DP kernel (core/dp_kernels.h)
// must be BIT-identical to the reference scalar solver — err rows, choice
// rows (traceback ties included), and cached representatives — across every
// oracle type x {kSum, kMax} x budgets, sequentially and in the blocked
// parallel form, with and without workspace reuse. This pins down the
// tentpole guarantee that the kernels only change speed, never answers.

#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <vector>

#include "core/abs_oracle.h"
#include "core/dp_kernels.h"
#include "core/histogram_dp.h"
#include "core/oracle_factory.h"
#include "core/wavelet_dp.h"
#include "core/wavelet_unrestricted.h"
#include "engine/synopsis_engine.h"
#include "gen/generators.h"
#include "model/value_pdf.h"
#include "util/thread_pool.h"

namespace probsyn {
namespace {

constexpr ErrorMetric kAllMetrics[] = {
    ErrorMetric::kSse,  ErrorMetric::kSsre, ErrorMetric::kSae,
    ErrorMetric::kSare, ErrorMetric::kMae,  ErrorMetric::kMare};

// Exact (bitwise) table equality: EXPECT_EQ on doubles is ==, which is the
// contract — not "close enough".
void ExpectBitIdenticalTables(const HistogramDpResult& expected,
                              const HistogramDpResult& actual,
                              const std::string& label) {
  ASSERT_EQ(expected.domain_size(), actual.domain_size()) << label;
  ASSERT_EQ(expected.table_layers(), actual.table_layers()) << label;
  const std::size_t n = expected.domain_size();
  for (std::size_t b = 1; b <= expected.table_layers(); ++b) {
    auto err_e = expected.ErrorRow(b);
    auto err_a = actual.ErrorRow(b);
    auto cho_e = expected.ChoiceRow(b);
    auto cho_a = actual.ChoiceRow(b);
    auto rep_e = expected.RepresentativeRow(b);
    auto rep_a = actual.RepresentativeRow(b);
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(err_e[j], err_a[j]) << label << " err b=" << b << " j=" << j;
      ASSERT_EQ(cho_e[j], cho_a[j]) << label << " choice b=" << b
                                    << " j=" << j;
      ASSERT_EQ(rep_e[j], rep_a[j]) << label << " rep b=" << b << " j=" << j;
    }
  }
}

// Solves with the reference scalar kernel and with the specialized kernel
// (sequentially, in parallel, and through a reused workspace) and demands
// bitwise equality everywhere.
void CheckKernelParity(const BucketCostOracle& oracle, DpCombiner combiner,
                       std::size_t max_buckets, const std::string& label) {
  DpKernelOptions reference_options;
  reference_options.kernel = DpKernelKind::kReference;
  HistogramDpResult reference = SolveHistogramDpWithKernel(
      oracle, max_buckets, combiner, reference_options);

  const DpKernelKind kind = SelectDpKernel(oracle);

  DpKernelOptions kernel_options;
  kernel_options.kernel = kind;
  HistogramDpResult kernel =
      SolveHistogramDpWithKernel(oracle, max_buckets, combiner,
                                 kernel_options);
  EXPECT_EQ(kernel.kernel(), kind);
  ExpectBitIdenticalTables(reference, kernel, label + "/sequential");

  ThreadPool pool(3);
  DpKernelOptions parallel_options;
  parallel_options.kernel = kind;
  parallel_options.pool = &pool;
  HistogramDpResult parallel = SolveHistogramDpWithKernel(
      oracle, max_buckets, combiner, parallel_options);
  ExpectBitIdenticalTables(reference, parallel, label + "/parallel");

  DpWorkspace workspace;
  DpKernelOptions reuse_options;
  reuse_options.kernel = kind;
  reuse_options.workspace = &workspace;
  {
    // Dirty the workspace with an unrelated solve (different budget), then
    // reuse it: stale storage must not leak into the result.
    HistogramDpResult scratch = SolveHistogramDpWithKernel(
        oracle, std::max<std::size_t>(1, max_buckets / 2), combiner,
        reuse_options);
    (void)scratch;
  }
  HistogramDpResult reused = SolveHistogramDpWithKernel(
      oracle, max_buckets, combiner, reuse_options);
  ExpectBitIdenticalTables(reference, reused, label + "/workspace-reuse");
}

struct ParityCase {
  ErrorMetric metric;
  SseVariant variant;
  double c;
  std::uint64_t seed;
  bool weighted;
};

std::string ParityCaseName(const ::testing::TestParamInfo<ParityCase>& info) {
  std::string name = ErrorMetricName(info.param.metric);
  if (info.param.metric == ErrorMetric::kSse &&
      info.param.variant == SseVariant::kWorldMean) {
    name += "wm";
  }
  if (info.param.weighted) name += "weighted";
  return name + "_seed" + std::to_string(info.param.seed);
}

class DpKernelParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(DpKernelParityTest, BitIdenticalAcrossCombinersAndBudgets) {
  const ParityCase& param = GetParam();
  const std::size_t kDomain = 64;
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = kDomain, .max_support = 4, .max_value = 8,
       .seed = param.seed});
  SynopsisOptions options;
  options.metric = param.metric;
  options.sanity_c = param.c;
  options.sse_variant = param.variant;
  if (param.weighted) {
    // A zero-weight stretch exercises the oracles' "workload ignores the
    // bucket" branches; ties abound there.
    options.workload.assign(kDomain, 1.0);
    for (std::size_t i = 10; i < 30; ++i) options.workload[i] = 0.0;
    for (std::size_t i = 40; i < kDomain; ++i) options.workload[i] = 2.5;
  }
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  EXPECT_EQ(bundle->kernel, SelectDpKernel(*bundle->oracle));

  for (DpCombiner combiner : {DpCombiner::kSum, DpCombiner::kMax}) {
    for (std::size_t budget : {std::size_t{1}, std::size_t{5}, kDomain}) {
      std::string label = std::string(ErrorMetricName(param.metric)) +
                          (combiner == DpCombiner::kSum ? "/sum" : "/max") +
                          "/B=" + std::to_string(budget);
      CheckKernelParity(*bundle->oracle, combiner, budget, label);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OraclesAndSeeds, DpKernelParityTest,
    ::testing::Values(
        ParityCase{ErrorMetric::kSse, SseVariant::kFixedRepresentative, 1.0,
                   101, false},
        ParityCase{ErrorMetric::kSse, SseVariant::kWorldMean, 1.0, 102,
                   false},
        ParityCase{ErrorMetric::kSse, SseVariant::kFixedRepresentative, 1.0,
                   103, true},
        ParityCase{ErrorMetric::kSsre, SseVariant::kWorldMean, 0.5, 104,
                   false},
        ParityCase{ErrorMetric::kSsre, SseVariant::kWorldMean, 1.0, 105,
                   true},
        ParityCase{ErrorMetric::kSae, SseVariant::kWorldMean, 1.0, 106,
                   false},
        ParityCase{ErrorMetric::kSae, SseVariant::kWorldMean, 1.0, 107,
                   true},
        ParityCase{ErrorMetric::kSare, SseVariant::kWorldMean, 0.5, 108,
                   false},
        ParityCase{ErrorMetric::kMae, SseVariant::kWorldMean, 1.0, 109,
                   false},
        ParityCase{ErrorMetric::kMae, SseVariant::kWorldMean, 1.0, 110,
                   true},
        ParityCase{ErrorMetric::kMare, SseVariant::kWorldMean, 0.5, 111,
                   false}),
    ParityCaseName);

TEST(DpKernelParity, TupleSseWorldMeanSweepKernel) {
  TuplePdfInput input = GenerateRandomTuplePdf(
      {.domain_size = 48, .num_tuples = 120, .max_alternatives = 4,
       .seed = 201});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kWorldMean;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle->kernel, DpKernelKind::kTupleSse);
  for (DpCombiner combiner : {DpCombiner::kSum, DpCombiner::kMax}) {
    CheckKernelParity(*bundle->oracle, combiner, 48,
                      combiner == DpCombiner::kSum ? "tuple/sum"
                                                   : "tuple/max");
  }
}

// Tie-heavy inputs: constant and block-constant point masses yield large
// zero-cost plateaus, so many (budget, column) cells have many minimizing
// splits — exactly where a pruned/vectorized argmin could legally-looking
// diverge from the reference's first-attaining-split rule.
TEST(DpKernelParity, TieHeavyPlateausBreakTiesIdentically) {
  std::vector<ValuePdf> pdfs;
  for (std::size_t i = 0; i < 96; ++i) {
    pdfs.push_back(ValuePdf::PointMass(1.0 + static_cast<double>(i / 24)));
  }
  ValuePdfInput input(std::move(pdfs));
  for (ErrorMetric metric :
       {ErrorMetric::kSse, ErrorMetric::kSae, ErrorMetric::kMae}) {
    SynopsisOptions options;
    options.metric = metric;
    options.sse_variant = SseVariant::kFixedRepresentative;
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok());
    for (DpCombiner combiner : {DpCombiner::kSum, DpCombiner::kMax}) {
      CheckKernelParity(*bundle->oracle, combiner, 96,
                        std::string("plateau/") + ErrorMetricName(metric));
    }
  }
}

// Catastrophic-cancellation regression: near-constant large-magnitude
// frequencies make the computed SSE bucket cost (sum E[g^2] minus a huge
// near-equal square) non-monotone in the split point at the ~1e-4 level
// (amplified by ClampTinyNegative's asymmetric clamp). A raw
// monotone-split bisection returns a wrong argmin here; the bound-verified
// kMax cell must not.
TEST(DpKernelParity, CancellationBreaksMonotonicityButNotParity) {
  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> jitter(-1e-3, 1e-3);
  std::vector<ValuePdf> pdfs;
  for (std::size_t i = 0; i < 640; ++i) {
    pdfs.push_back(ValuePdf::PointMass(1e6 + jitter(rng)));
  }
  ValuePdfInput input(std::move(pdfs));
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  for (DpCombiner combiner : {DpCombiner::kSum, DpCombiner::kMax}) {
    for (std::size_t budget : {std::size_t{8}, std::size_t{64}}) {
      CheckKernelParity(*bundle->oracle, combiner, budget,
                        std::string("cancellation/") +
                            (combiner == DpCombiner::kSum ? "sum" : "max") +
                            "/B=" + std::to_string(budget));
    }
  }
}

// A domain larger than the fast kSum cell's chunk (512) exercises the
// cross-chunk minimum bookkeeping, and larger than the parallel path's
// block size exercises multi-block scheduling.
TEST(DpKernelParity, LargeDomainCrossesChunkAndBlockBoundaries) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 1200, .max_support = 3, .max_value = 6, .seed = 301});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kFixedRepresentative;
  auto bundle = MakeBucketOracle(input, options);
  ASSERT_TRUE(bundle.ok());
  for (DpCombiner combiner : {DpCombiner::kSum, DpCombiner::kMax}) {
    CheckKernelParity(*bundle->oracle, combiner, 12,
                      combiner == DpCombiner::kSum ? "large/sum"
                                                   : "large/max");
  }
}

TEST(DpKernelParity, ExtractedHistogramsMatchReference) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 80, .max_support = 4, .max_value = 7, .seed = 401});
  for (ErrorMetric metric : kAllMetrics) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 0.5;
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok());

    DpKernelOptions reference_options;
    reference_options.kernel = DpKernelKind::kReference;
    HistogramDpResult reference = SolveHistogramDpWithKernel(
        *bundle->oracle, 12, bundle->combiner, reference_options);
    HistogramDpResult kernel =
        SolveHistogramDp(*bundle->oracle, 12, bundle->combiner);
    for (std::size_t b = 1; b <= 12; ++b) {
      Histogram expected = reference.ExtractHistogram(b);
      Histogram actual = kernel.ExtractHistogram(b);
      EXPECT_TRUE(expected == actual)
          << ErrorMetricName(metric) << " B=" << b;
      // Cached representatives must equal fresh oracle calls (what the
      // pre-kernel extraction used to do).
      for (const HistogramBucket& bucket : actual.buckets()) {
        EXPECT_EQ(bucket.representative,
                  bundle->oracle->Cost(bucket.start, bucket.end)
                      .representative)
            << ErrorMetricName(metric) << " B=" << b;
      }
    }
  }
}

TEST(DpKernelSelection, FactoryKnowsEveryKernel) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 16, .seed = 7});
  for (ErrorMetric metric : kAllMetrics) {
    SynopsisOptions options;
    options.metric = metric;
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok());
    EXPECT_NE(bundle->kernel, DpKernelKind::kReference)
        << ErrorMetricName(metric) << " should have a specialized kernel";
    EXPECT_EQ(bundle->kernel, SelectDpKernel(*bundle->oracle))
        << ErrorMetricName(metric);
  }
}

// --- Approximate-DP kernel parity: the specialized point-cost kernels must
// reproduce the reference virtual-dispatch solve exactly — histogram
// (boundaries, representatives), cost, and the Theorem 5 evaluation count.

void CheckApproxKernelParity(const BucketCostOracle& oracle,
                             std::size_t max_buckets, double epsilon,
                             const std::string& label) {
  auto reference = SolveApproxHistogramDpWithKernel(
      oracle, max_buckets, epsilon, {.kernel = DpKernelKind::kReference});
  ASSERT_TRUE(reference.ok()) << label << ": " << reference.status();
  EXPECT_EQ(reference->kernel, DpKernelKind::kReference) << label;

  auto kernel = SolveApproxHistogramDp(oracle, max_buckets, epsilon);
  ASSERT_TRUE(kernel.ok()) << label << ": " << kernel.status();
  EXPECT_EQ(kernel->kernel, SelectDpKernel(oracle)) << label;

  EXPECT_TRUE(reference->histogram == kernel->histogram) << label;
  EXPECT_EQ(reference->cost, kernel->cost) << label;
  EXPECT_EQ(reference->oracle_evaluations, kernel->oracle_evaluations)
      << label;
}

constexpr ErrorMetric kCumulativeMetrics[] = {
    ErrorMetric::kSse, ErrorMetric::kSsre, ErrorMetric::kSae,
    ErrorMetric::kSare};

TEST(ApproxDpKernelParity, CumulativeMetricsAcrossBudgetsAndEps) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 96, .max_support = 4, .max_value = 8, .seed = 501});
  for (ErrorMetric metric : kCumulativeMetrics) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 0.5;
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok());
    for (std::size_t budget : {std::size_t{1}, std::size_t{8}}) {
      for (double eps : {0.05, 0.5}) {
        CheckApproxKernelParity(*bundle->oracle, budget, eps,
                                std::string(ErrorMetricName(metric)) +
                                    "/B=" + std::to_string(budget));
      }
    }
  }
}

TEST(ApproxDpKernelParity, WeightedZeroStretchesTieHeavy) {
  const std::size_t kDomain = 80;
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = kDomain, .max_support = 4, .max_value = 8, .seed = 502});
  for (ErrorMetric metric : kCumulativeMetrics) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 1.0;
    options.sse_variant = SseVariant::kFixedRepresentative;  // weights need it
    // Zero-weight stretches make many candidate buckets cost exactly 0 —
    // tie-heavy territory for the class-boundary and argmin comparisons.
    options.workload.assign(kDomain, 1.0);
    for (std::size_t i = 15; i < 40; ++i) options.workload[i] = 0.0;
    auto bundle = MakeBucketOracle(input, options);
    ASSERT_TRUE(bundle.ok());
    CheckApproxKernelParity(*bundle->oracle, 6, 0.1,
                            std::string("weighted/") +
                                ErrorMetricName(metric));
  }
}

TEST(ApproxDpKernelParity, PlateauInputsAndTupleSse) {
  // Block-constant point masses: zero-cost plateaus everywhere, so the
  // approximate DP's inherit-vs-split ties and the warm abs search's
  // cold-fallback path both get exercised.
  std::vector<ValuePdf> pdfs;
  for (std::size_t i = 0; i < 64; ++i) {
    pdfs.push_back(ValuePdf::PointMass(1.0 + static_cast<double>(i / 16)));
  }
  ValuePdfInput plateau(std::move(pdfs));
  for (ErrorMetric metric : {ErrorMetric::kSse, ErrorMetric::kSae}) {
    SynopsisOptions options;
    options.metric = metric;
    auto bundle = MakeBucketOracle(plateau, options);
    ASSERT_TRUE(bundle.ok());
    CheckApproxKernelParity(*bundle->oracle, 5, 0.2,
                            std::string("plateau/") +
                                ErrorMetricName(metric));
  }

  TuplePdfInput tuples = GenerateRandomTuplePdf(
      {.domain_size = 40, .num_tuples = 90, .max_alternatives = 4,
       .seed = 503});
  SynopsisOptions options;
  options.metric = ErrorMetric::kSse;
  options.sse_variant = SseVariant::kWorldMean;
  auto bundle = MakeBucketOracle(tuples, options);
  ASSERT_TRUE(bundle.ok());
  ASSERT_EQ(bundle->kernel, DpKernelKind::kTupleSse);
  CheckApproxKernelParity(*bundle->oracle, 6, 0.1, "tuple-sse");
}

// --- Warm-started SAE/SARE sweeps. FlatSweep's warm acceptance is
// guaranteed to agree with cold Cost() on convex cost sequences; computed
// costs can split a plateau into several equal-valued pits by rounding, in
// which case the warm sweep may return a different, EQUALLY-OPTIMAL grid
// value (reference-vs-kernel DP parity is immune — both run the same
// sweep). So: optimal cost must always agree (4-ulp bound for the
// plateau-splitting case), and on exact-arithmetic inputs (integer point
// masses) representatives must agree bit-for-bit, cold fallback included.

TEST(AbsWarmSweepParity, CostsMatchColdSearchOnRandomData) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 48, .max_support = 4, .max_value = 8, .seed = 601});
  for (bool relative : {false, true}) {
    AbsCumulativeOracle oracle(input, relative, 1.0);
    const std::size_t n = oracle.domain_size();
    for (std::size_t e = 0; e < n; ++e) {
      AbsCumulativeOracle::FlatSweep sweep(oracle, e);
      for (std::size_t s = e;; --s) {
        BucketCost warm = sweep.Extend();
        BucketCost cold = oracle.Cost(s, e);
        ASSERT_DOUBLE_EQ(warm.cost, cold.cost)
            << "rel=" << relative << " bucket [" << s << ", " << e << "]";
        if (s == 0) break;
      }
    }
  }
}

TEST(AbsWarmSweepParity, BitIdenticalToColdSearchOnExactArithmetic) {
  std::vector<ValuePdf> flat;
  for (std::size_t i = 0; i < 48; ++i) {
    flat.push_back(ValuePdf::PointMass(2.0 + static_cast<double>(i / 12)));
  }
  ValuePdfInput input(std::move(flat));
  for (bool relative : {false, true}) {
    AbsCumulativeOracle oracle(input, relative, 1.0);
    const std::size_t n = oracle.domain_size();
    for (std::size_t e = 0; e < n; ++e) {
      AbsCumulativeOracle::FlatSweep sweep(oracle, e);
      for (std::size_t s = e;; --s) {
        BucketCost warm = sweep.Extend();
        BucketCost cold = oracle.Cost(s, e);
        ASSERT_EQ(warm.cost, cold.cost)
            << "rel=" << relative << " bucket [" << s << ", " << e << "]";
        ASSERT_EQ(warm.representative, cold.representative)
            << "rel=" << relative << " bucket [" << s << ", " << e << "]";
        if (s == 0) break;
      }
    }
  }
}

// --- Wavelet budget-split kernels.

// Compares the fast kernels against the reference scan DIRECTLY (below
// MinBudgetSplit's hybrid size cutoff the dispatcher would route everything
// to the scan, hiding the reduction/bisection paths from coverage).
void CheckSplitAgainstReference(const std::vector<double>& left,
                                const std::vector<double>& right,
                                std::size_t rem, int trial) {
  namespace bsi = budget_split_internal;
  const std::size_t bl_max = std::min(rem, left.size() - 1);
  const std::size_t cap_right = right.size() - 1;
  for (DpCombiner combiner : {DpCombiner::kSum, DpCombiner::kMax}) {
    BudgetSplit expected = bsi::Reference(combiner, left.data(), bl_max,
                                          right.data(), cap_right, rem);
    BudgetSplit actual =
        combiner == DpCombiner::kSum
            ? bsi::SumFast(left.data(), bl_max, right.data(), cap_right, rem)
            : bsi::MaxFast(left.data(), bl_max, right.data(), cap_right, rem);
    EXPECT_EQ(expected.value, actual.value)
        << "trial " << trial << " rem=" << rem;
    EXPECT_EQ(expected.left_budget, actual.left_budget)
        << "trial " << trial << " rem=" << rem;
    // The hybrid dispatcher must agree with the reference at EVERY size
    // (below the cutoff it runs the scan itself).
    BudgetSplit dispatched =
        MinBudgetSplit(combiner, left.data(), bl_max, right.data(), cap_right,
                       rem, WaveletSplitKernel::kBudgetSplit);
    EXPECT_EQ(expected.value, dispatched.value) << "trial " << trial;
    EXPECT_EQ(expected.left_budget, dispatched.left_budget)
        << "trial " << trial;
  }
}

TEST(MinBudgetSplitTest, FastMatchesReferenceOnMonotoneTables) {
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> step(0.0, 1.0);
  for (int trial = 0; trial < 200; ++trial) {
    // Random non-increasing tables, with plateaus (zero steps) common.
    auto make = [&](std::size_t len) {
      std::vector<double> v(len);
      double x = 10.0 + step(rng);
      for (std::size_t i = 0; i < len; ++i) {
        v[i] = x;
        if (rng() % 3 != 0) x -= step(rng);  // ~1/3 of steps are plateaus
      }
      return v;
    };
    const std::size_t llen = 1 + rng() % 90;
    const std::size_t rlen = 1 + rng() % 90;
    std::vector<double> left = make(llen);
    std::vector<double> right = make(rlen);
    for (std::size_t rem : {llen - 1, llen + rlen, std::size_t{0},
                            (llen + rlen) / 2}) {
      CheckSplitAgainstReference(left, right, rem, trial);
    }
  }
}

TEST(MinBudgetSplitTest, ConstantTablesBreakTiesAtFirstSplit) {
  // Fully constant tables are one big plateau: every split ties, and the
  // fast paths must return bl = 0 like the ascending reference scan.
  std::vector<double> left(41, 1.5);
  std::vector<double> right(37, 1.5);
  for (std::size_t rem : {std::size_t{0}, std::size_t{4}, std::size_t{40},
                          std::size_t{76}}) {
    CheckSplitAgainstReference(left, right, rem, -1);
    BudgetSplit split = MinBudgetSplit(
        DpCombiner::kSum, left.data(), std::min(rem, left.size() - 1),
        right.data(), right.size() - 1, rem, WaveletSplitKernel::kAuto);
    EXPECT_EQ(split.left_budget, 0u) << "rem=" << rem;
    EXPECT_EQ(split.value, 3.0) << "rem=" << rem;
  }
}

// Wavelet DP parity: budget-split vs reference must agree bit-for-bit in
// cost and kept coefficients for both coefficient-tree DPs, across all six
// metrics (sum and max combiners) and weighted inputs.
TEST(WaveletSplitKernelParity, RestrictedDpAllMetrics) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 32, .max_support = 3, .max_value = 6, .seed = 701});
  for (ErrorMetric metric : kAllMetrics) {
    for (bool weighted : {false, true}) {
      SynopsisOptions options;
      options.metric = metric;
      options.sanity_c = 0.5;
      if (weighted) {
        options.sse_variant = SseVariant::kFixedRepresentative;
        options.workload.assign(32, 1.0);
        for (std::size_t i = 8; i < 16; ++i) options.workload[i] = 0.0;
        for (std::size_t i = 24; i < 32; ++i) options.workload[i] = 2.0;
      }
      for (std::size_t budget : {std::size_t{1}, std::size_t{7}}) {
        auto reference = BuildRestrictedWaveletDp(
            input, budget, options, 2048, WaveletSplitKernel::kReference);
        ASSERT_TRUE(reference.ok()) << reference.status();
        EXPECT_EQ(reference->kernel, WaveletSplitKernel::kReference);
        auto fast = BuildRestrictedWaveletDp(input, budget, options);
        ASSERT_TRUE(fast.ok()) << fast.status();
        EXPECT_EQ(fast->kernel, WaveletSplitKernel::kBudgetSplit);
        std::string label = std::string(ErrorMetricName(metric)) +
                            (weighted ? "/weighted" : "") +
                            "/B=" + std::to_string(budget);
        EXPECT_EQ(reference->cost, fast->cost) << label;
        EXPECT_EQ(reference->synopsis.coefficients(),
                  fast->synopsis.coefficients()) << label;
      }
    }
  }
}

TEST(WaveletSplitKernelParity, UnrestrictedDpAllMetrics) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 16, .max_support = 3, .max_value = 5, .seed = 702});
  for (ErrorMetric metric : kAllMetrics) {
    SynopsisOptions options;
    options.metric = metric;
    options.sanity_c = 0.5;
    for (std::size_t budget : {std::size_t{1}, std::size_t{5}}) {
      UnrestrictedWaveletOptions reference_options;
      reference_options.grid_points = 17;
      reference_options.kernel = WaveletSplitKernel::kReference;
      auto reference =
          BuildUnrestrictedWaveletDp(input, budget, options,
                                     reference_options);
      ASSERT_TRUE(reference.ok()) << reference.status();
      EXPECT_EQ(reference->kernel, WaveletSplitKernel::kReference);

      UnrestrictedWaveletOptions fast_options;
      fast_options.grid_points = 17;
      auto fast =
          BuildUnrestrictedWaveletDp(input, budget, options, fast_options);
      ASSERT_TRUE(fast.ok()) << fast.status();
      EXPECT_EQ(fast->kernel, WaveletSplitKernel::kBudgetSplit);

      std::string label = std::string(ErrorMetricName(metric)) +
                          "/B=" + std::to_string(budget);
      EXPECT_EQ(reference->cost, fast->cost) << label;
      EXPECT_EQ(reference->synopsis.coefficients(),
                fast->synopsis.coefficients()) << label;
    }
  }
}

// Tie-heavy wavelet input: block-constant frequencies drive whole subtrees
// to identical errors, so budget splits are full of plateaus — the
// bisections' tie-breaks must still match the ascending scan exactly.
TEST(WaveletSplitKernelParity, PlateauInputsBreakTiesIdentically) {
  std::vector<ValuePdf> pdfs;
  for (std::size_t i = 0; i < 32; ++i) {
    pdfs.push_back(ValuePdf::PointMass(1.0 + static_cast<double>(i / 8)));
  }
  ValuePdfInput input(std::move(pdfs));
  for (ErrorMetric metric : {ErrorMetric::kSae, ErrorMetric::kMae}) {
    SynopsisOptions options;
    options.metric = metric;
    auto reference = BuildRestrictedWaveletDp(input, 6, options, 2048,
                                              WaveletSplitKernel::kReference);
    ASSERT_TRUE(reference.ok());
    auto fast = BuildRestrictedWaveletDp(input, 6, options);
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(reference->cost, fast->cost) << ErrorMetricName(metric);
    EXPECT_EQ(reference->synopsis.coefficients(),
              fast->synopsis.coefficients()) << ErrorMetricName(metric);
  }
}

// Budgets past the hybrid cutoff (kSmallBudgetSplit) drive the solvers'
// splits through the reduction/bisection paths end-to-end.
TEST(WaveletSplitKernelParity, LargeBudgetsEngageFastSplitPaths) {
  ValuePdfInput input = GenerateRandomValuePdf(
      {.domain_size = 96, .max_support = 3, .max_value = 6, .seed = 703});
  for (ErrorMetric metric : {ErrorMetric::kSse, ErrorMetric::kMae}) {
    SynopsisOptions options;
    options.metric = metric;
    const std::size_t budget = 48;

    auto restricted_reference = BuildRestrictedWaveletDp(
        input, budget, options, 2048, WaveletSplitKernel::kReference);
    ASSERT_TRUE(restricted_reference.ok());
    auto restricted_fast = BuildRestrictedWaveletDp(input, budget, options);
    ASSERT_TRUE(restricted_fast.ok());
    EXPECT_EQ(restricted_reference->cost, restricted_fast->cost)
        << ErrorMetricName(metric);
    EXPECT_EQ(restricted_reference->synopsis.coefficients(),
              restricted_fast->synopsis.coefficients())
        << ErrorMetricName(metric);

    UnrestrictedWaveletOptions reference_options;
    reference_options.grid_points = 9;
    reference_options.kernel = WaveletSplitKernel::kReference;
    auto unrestricted_reference =
        BuildUnrestrictedWaveletDp(input, budget, options, reference_options);
    ASSERT_TRUE(unrestricted_reference.ok());
    UnrestrictedWaveletOptions fast_options;
    fast_options.grid_points = 9;
    auto unrestricted_fast =
        BuildUnrestrictedWaveletDp(input, budget, options, fast_options);
    ASSERT_TRUE(unrestricted_fast.ok());
    EXPECT_EQ(unrestricted_reference->cost, unrestricted_fast->cost)
        << ErrorMetricName(metric);
    EXPECT_EQ(unrestricted_reference->synopsis.coefficients(),
              unrestricted_fast->synopsis.coefficients())
        << ErrorMetricName(metric);
  }
}

TEST(DpWorkspacePoolTest, LeasesAreExclusiveAndRecycled) {
  DpWorkspacePool pool;
  DpWorkspace* first = nullptr;
  {
    auto lease_a = pool.Acquire();
    auto lease_b = pool.Acquire();
    EXPECT_NE(lease_a.get(), nullptr);
    EXPECT_NE(lease_b.get(), nullptr);
    EXPECT_NE(lease_a.get(), lease_b.get());
    first = lease_a.get();
  }
  // Returned workspaces are handed out again instead of reallocated.
  auto lease_c = pool.Acquire();
  auto lease_d = pool.Acquire();
  EXPECT_TRUE(lease_c.get() == first || lease_d.get() == first);
}

TEST(EngineKernelIntegration, SolverStringRecordsChosenKernel) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 32, .seed = 9});
  SynopsisEngine engine({.parallelism = 1});
  SynopsisRequest request;
  request.kind = SynopsisKind::kHistogram;
  request.method = HistogramMethod::kOptimal;
  request.budget = 4;
  request.options.metric = ErrorMetric::kSse;
  auto result = engine.Build(input, request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->solver.find("kernel=sse-moment"), std::string::npos)
      << result->solver;

  request.options.metric = ErrorMetric::kMae;
  result = engine.Build(input, request);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->solver.find("kernel=max-error"), std::string::npos)
      << result->solver;
}

// Every DP-backed route — approximate and wavelet included — records the
// kernel that filled its tables, so bench/docs output is never ambiguous
// about which inner loop ran.
TEST(EngineKernelIntegration, ApproxAndWaveletSolverStringsRecordKernel) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 32, .seed = 11});
  SynopsisEngine engine({.parallelism = 1});

  SynopsisRequest approx;
  approx.kind = SynopsisKind::kHistogram;
  approx.method = HistogramMethod::kApprox;
  approx.budget = 4;
  approx.epsilon = 0.1;
  approx.options.metric = ErrorMetric::kSae;
  auto result = engine.Build(input, approx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->solver.find("kernel=abs-cumulative"), std::string::npos)
      << result->solver;

  SynopsisRequest restricted;
  restricted.kind = SynopsisKind::kWavelet;
  restricted.wavelet_method = WaveletMethod::kRestrictedDp;
  restricted.budget = 4;
  restricted.options.metric = ErrorMetric::kMae;
  result = engine.Build(input, restricted);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->solver.find("kernel=budget-split"), std::string::npos)
      << result->solver;

  SynopsisRequest unrestricted = restricted;
  unrestricted.wavelet_method = WaveletMethod::kUnrestrictedDp;
  unrestricted.unrestricted.grid_points = 9;
  result = engine.Build(input, unrestricted);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->solver.find("kernel=budget-split"), std::string::npos)
      << result->solver;
  // Forcing the reference split kernel must be visible, not omitted.
  unrestricted.unrestricted.kernel = WaveletSplitKernel::kReference;
  result = engine.Build(input, unrestricted);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->solver.find("kernel=reference"), std::string::npos)
      << result->solver;
}

// Batches mixing MAE and MARE share one PointErrorTables build; repeated
// batches reuse the engine's leased workspace. Neither may change answers.
TEST(EngineKernelIntegration, RepeatedMixedBatchesStayBitIdentical) {
  ValuePdfInput input = GenerateRandomValuePdf({.domain_size = 40, .seed = 15});
  SynopsisEngine engine({.parallelism = 1});
  std::vector<SynopsisRequest> requests;
  for (ErrorMetric metric : {ErrorMetric::kMae, ErrorMetric::kMare,
                             ErrorMetric::kSse, ErrorMetric::kSae}) {
    SynopsisRequest request;
    request.kind = SynopsisKind::kHistogram;
    request.method = HistogramMethod::kOptimal;
    request.budget = 6;
    request.options.metric = metric;
    request.options.sanity_c = 1.0;
    requests.push_back(request);
  }
  auto first = engine.BuildBatch(input, requests);
  ASSERT_TRUE(first.ok()) << first.status();
  // Second run reuses the leased workspace (and the fresh tables cache).
  auto second = engine.BuildBatch(input, requests);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (std::size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].cost, (*second)[i].cost) << i;
    EXPECT_TRUE((*first)[i].histogram == (*second)[i].histogram) << i;
  }
  // And both equal the direct solver.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto bundle = MakeBucketOracle(input, requests[i].options);
    ASSERT_TRUE(bundle.ok());
    HistogramDpResult dp =
        SolveHistogramDp(*bundle->oracle, 6, bundle->combiner);
    EXPECT_EQ((*first)[i].cost, dp.OptimalCost(6)) << i;
    EXPECT_TRUE((*first)[i].histogram == dp.ExtractHistogram(6)) << i;
  }
}

}  // namespace
}  // namespace probsyn
