// Serialization tests for the synopsis codec (io/synopsis_codec.h): bitwise
// round trips for both synopsis kinds (hand-built and engine-built), golden
// byte stability of the v1 format (two-sided: today's encoder reproduces the
// pinned bytes, and the pinned bytes decode to the original synopsis), an
// exhaustive corruption sweep (every truncation and every single-bit flip of
// every byte must fail with a clean Status — never a crash, never a silently
// wrong synopsis), strict-structure rejections that a checksum alone cannot
// catch, and the FaultSite::kPdataRead injection hook on the decode path.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/synopsis_engine.h"
#include "gen/generators.h"
#include "io/synopsis_codec.h"
#include "util/fault_injection.h"

namespace probsyn {
namespace {

std::span<const std::uint8_t> AsBytes(const std::string& blob) {
  return {reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()};
}

std::string ToHex(const std::string& blob) {
  static const char kDigits[] = "0123456789abcdef";
  std::string hex;
  hex.reserve(2 * blob.size());
  for (unsigned char c : blob) {
    hex.push_back(kDigits[c >> 4]);
    hex.push_back(kDigits[c & 0xf]);
  }
  return hex;
}

std::string FromHex(const std::string& hex) {
  std::string bytes;
  bytes.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    auto nibble = [](char c) -> unsigned {
      return c <= '9' ? static_cast<unsigned>(c - '0')
                      : static_cast<unsigned>(c - 'a' + 10);
    };
    bytes.push_back(static_cast<char>(nibble(hex[i]) << 4 | nibble(hex[i + 1])));
  }
  return bytes;
}

// Independent reimplementation of the v1 framing (magic, version, kind,
// reserved, payload size, payload, trailing FNV-1a 64) so structure tests
// can hand the decoder payloads the encoder would never emit — with a VALID
// checksum, proving the structural validation itself rejects them.
std::string FrameRaw(std::uint8_t kind, const std::string& payload) {
  std::string blob = "PSYN";
  blob.push_back(static_cast<char>(kSynopsisCodecVersion));
  blob.push_back(static_cast<char>(kind));
  blob.push_back(0);
  blob.push_back(0);
  std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) blob.push_back(static_cast<char>(size >> (8 * i)));
  blob.append(payload);
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : blob) {
    h ^= c;
    h *= 1099511628211ull;
  }
  for (int i = 0; i < 8; ++i) blob.push_back(static_cast<char>(h >> (8 * i)));
  return blob;
}

void ExpectBitwiseEqual(const Histogram& want, const Histogram& got) {
  ASSERT_EQ(want.num_buckets(), got.num_buckets());
  for (std::size_t k = 0; k < want.num_buckets(); ++k) {
    EXPECT_EQ(want.buckets()[k].start, got.buckets()[k].start) << "bucket " << k;
    EXPECT_EQ(want.buckets()[k].end, got.buckets()[k].end) << "bucket " << k;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(want.buckets()[k].representative),
              std::bit_cast<std::uint64_t>(got.buckets()[k].representative))
        << "bucket " << k;
  }
}

void ExpectBitwiseEqual(const WaveletSynopsis& want,
                        const WaveletSynopsis& got) {
  EXPECT_EQ(want.domain_size(), got.domain_size());
  EXPECT_EQ(want.transform_size(), got.transform_size());
  ASSERT_EQ(want.num_coefficients(), got.num_coefficients());
  for (std::size_t k = 0; k < want.num_coefficients(); ++k) {
    EXPECT_EQ(want.coefficients()[k].index, got.coefficients()[k].index)
        << "coefficient " << k;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(want.coefficients()[k].value),
              std::bit_cast<std::uint64_t>(got.coefficients()[k].value))
        << "coefficient " << k;
  }
}

// --- Round trips. -----------------------------------------------------------

TEST(SynopsisCodec, HistogramRoundTripIsBitwise) {
  for (std::uint64_t seed : {1u, 7u, 19u, 42u}) {
    ValuePdfInput input = GenerateRandomValuePdf(
        {.domain_size = 60, .max_support = 4, .max_value = 9, .seed = seed});
    SynopsisEngine engine({.parallelism = 1});
    SynopsisRequest request;
    request.kind = SynopsisKind::kHistogram;
    request.budget = 1 + seed % 9;
    auto result = engine.Build(input, request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    auto blob = EncodeHistogram(result->histogram);
    ASSERT_TRUE(blob.ok()) << blob.status().ToString();
    auto decoded = DecodeHistogram(AsBytes(*blob));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ExpectBitwiseEqual(result->histogram, *decoded);
    EXPECT_TRUE(decoded->Validate(input.domain_size()).ok());
  }
}

TEST(SynopsisCodec, WaveletRoundTripIsBitwise) {
  for (std::uint64_t seed : {2u, 11u, 23u}) {
    ValuePdfInput input = GenerateRandomValuePdf(
        {.domain_size = 50, .max_support = 4, .max_value = 9, .seed = seed});
    SynopsisEngine engine({.parallelism = 1});
    SynopsisRequest request;
    request.kind = SynopsisKind::kWavelet;
    request.budget = 1 + seed % 13;
    auto result = engine.Build(input, request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    auto blob = EncodeWavelet(result->wavelet);
    ASSERT_TRUE(blob.ok()) << blob.status().ToString();
    auto decoded = DecodeWavelet(AsBytes(*blob));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ExpectBitwiseEqual(result->wavelet, *decoded);
    EXPECT_TRUE(decoded->Validate().ok());
  }
}

TEST(SynopsisCodec, EmptyHistogramRoundTrips) {
  auto blob = EncodeHistogram(Histogram());
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  auto decoded = DecodeHistogram(AsBytes(*blob));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_buckets(), 0u);
  EXPECT_TRUE(decoded->Validate(0).ok());
}

TEST(SynopsisCodec, ZeroCoefficientWaveletRoundTrips) {
  WaveletSynopsis empty(4, 4, {});
  auto blob = EncodeWavelet(empty);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  auto decoded = DecodeWavelet(AsBytes(*blob));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectBitwiseEqual(empty, *decoded);
}

TEST(SynopsisCodec, DecodeSynopsisDispatchesOnKind) {
  Histogram h({{0, 1, 3.0}, {2, 3, -1.0}});
  auto hb = EncodeHistogram(h);
  ASSERT_TRUE(hb.ok());
  auto decoded = DecodeSynopsis(AsBytes(*hb));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, SynopsisBlobKind::kHistogram);
  ExpectBitwiseEqual(h, decoded->histogram);

  WaveletSynopsis w(3, 4, {{1, 0.5}});
  auto wb = EncodeWavelet(w);
  ASSERT_TRUE(wb.ok());
  decoded = DecodeSynopsis(AsBytes(*wb));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, SynopsisBlobKind::kWavelet);
  ExpectBitwiseEqual(w, decoded->wavelet);
}

// --- Golden bytes: the v1 format is pinned. ---------------------------------
//
// These blobs were produced by the v1 encoder; any byte-level change to the
// format (varint layout, bit packing, checksum, header) breaks this test and
// must ship as a NEW format version instead, because stores written by older
// builds must keep decoding forever.

constexpr char kGoldenHistogramHex[] =
    "5053594e010100001d0000000803030203000000000000f83f000000000000d03f000000"
    "00000000c04d63c5e57505459a";
constexpr char kGoldenWaveletHex[] =
    "5053594e010200001d00000006080358010000000000000440000000000000f4bf000000"
    "000000e03f5f65824448f7ce41";

Histogram GoldenHistogram() {
  return Histogram({{0, 2, 1.5}, {3, 4, 0.25}, {5, 7, -2.0}});
}

WaveletSynopsis GoldenWavelet() {
  return WaveletSynopsis(6, 8, {{0, 2.5}, {3, -1.25}, {5, 0.5}});
}

TEST(SynopsisCodecGolden, HistogramBytesAreStable) {
  auto blob = EncodeHistogram(GoldenHistogram());
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(ToHex(*blob), kGoldenHistogramHex);
}

TEST(SynopsisCodecGolden, WaveletBytesAreStable) {
  auto blob = EncodeWavelet(GoldenWavelet());
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(ToHex(*blob), kGoldenWaveletHex);
}

TEST(SynopsisCodecGolden, PinnedBlobsStillDecode) {
  std::string hist_blob = FromHex(kGoldenHistogramHex);
  auto hist = DecodeHistogram(AsBytes(hist_blob));
  ASSERT_TRUE(hist.ok()) << hist.status().ToString();
  ExpectBitwiseEqual(GoldenHistogram(), *hist);

  std::string wave_blob = FromHex(kGoldenWaveletHex);
  auto wave = DecodeWavelet(AsBytes(wave_blob));
  ASSERT_TRUE(wave.ok()) << wave.status().ToString();
  ExpectBitwiseEqual(GoldenWavelet(), *wave);
}

// --- Corruption: every mutation fails cleanly. ------------------------------

void ExpectCleanDecodeFailure(const std::string& blob, const char* label) {
  auto decoded = DecodeSynopsis(AsBytes(blob));
  ASSERT_FALSE(decoded.ok()) << label;
  StatusCode code = decoded.status().code();
  EXPECT_TRUE(code == StatusCode::kIOError ||
              code == StatusCode::kInvalidArgument)
      << label << ": " << decoded.status().ToString();
}

void SweepCorruptions(const std::string& blob) {
  // Every truncation (the empty prefix included).
  for (std::size_t len = 0; len < blob.size(); ++len) {
    ExpectCleanDecodeFailure(
        blob.substr(0, len),
        ("truncated to " + std::to_string(len)).c_str());
  }
  // Every single-bit flip of every byte. The trailing checksum covers the
  // whole header + payload, so no flip anywhere may survive.
  for (std::size_t pos = 0; pos < blob.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = blob;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << bit));
      ExpectCleanDecodeFailure(
          corrupt, ("bit " + std::to_string(bit) + " of byte " +
                    std::to_string(pos))
                       .c_str());
    }
  }
  // Appended trailing garbage.
  ExpectCleanDecodeFailure(blob + '\0', "one trailing byte");
}

TEST(SynopsisCodecCorruption, HistogramSweep) {
  auto blob = EncodeHistogram(GoldenHistogram());
  ASSERT_TRUE(blob.ok());
  SweepCorruptions(*blob);
}

TEST(SynopsisCodecCorruption, WaveletSweep) {
  auto blob = EncodeWavelet(GoldenWavelet());
  ASSERT_TRUE(blob.ok());
  SweepCorruptions(*blob);
}

TEST(SynopsisCodecCorruption, KindMismatchIsRejected) {
  auto hist_blob = EncodeHistogram(GoldenHistogram());
  auto wave_blob = EncodeWavelet(GoldenWavelet());
  ASSERT_TRUE(hist_blob.ok() && wave_blob.ok());
  EXPECT_EQ(DecodeWavelet(AsBytes(*hist_blob)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeHistogram(AsBytes(*wave_blob)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SynopsisCodecCorruption, EncodersRejectInvalidSynopses) {
  // Buckets that do not tile the domain.
  Histogram gap({{0, 1, 1.0}, {3, 4, 2.0}});
  EXPECT_EQ(EncodeHistogram(gap).status().code(),
            StatusCode::kInvalidArgument);
  // Non-power-of-two transform.
  WaveletSynopsis bad(5, 6, {});
  EXPECT_FALSE(EncodeWavelet(bad).ok());
}

// --- Structural attacks with a VALID checksum. ------------------------------
//
// A flipped bit is caught by the checksum; these payloads are framed with a
// correct checksum, so only the structural validation stands between the
// decoder and a bogus synopsis (or a giant allocation).

std::string Varint(std::uint64_t v) {
  std::string out;
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
  return out;
}

TEST(SynopsisCodecStructure, NonCanonicalVarintIsRejected) {
  // Domain size 8 encoded with a redundant continuation byte (0x88 0x00):
  // same value, different bytes — accepting it would break golden-byte
  // uniqueness, so the decoder must insist on the canonical form.
  std::string payload;
  payload.push_back('\x88');
  payload.push_back('\x00');
  payload += Varint(1);  // bucket count
  payload += Varint(8);  // delta
  payload.append(8, '\0');  // representative 0.0
  auto decoded = DecodeHistogram(AsBytes(FrameRaw(1, payload)));
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SynopsisCodecStructure, HugeDeclaredCountIsRejectedWithoutAllocating) {
  // Declares 2^40 buckets over a 2^40 domain; the decoder must refuse at
  // the sanity cap instead of attempting a terabyte-scale allocation.
  std::string payload = Varint(std::uint64_t{1} << 40);
  payload += Varint(std::uint64_t{1} << 40);
  auto decoded = DecodeHistogram(AsBytes(FrameRaw(1, payload)));
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SynopsisCodecStructure, ZeroWidthBucketIsRejected) {
  std::string payload = Varint(4) + Varint(2) + Varint(0) + Varint(4);
  payload.append(16, '\0');
  auto decoded = DecodeHistogram(AsBytes(FrameRaw(1, payload)));
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SynopsisCodecStructure, UncoveredDomainIsRejected) {
  // Deltas sum to 3 over a declared domain of 4.
  std::string payload = Varint(4) + Varint(2) + Varint(1) + Varint(2);
  payload.append(16, '\0');
  auto decoded = DecodeHistogram(AsBytes(FrameRaw(1, payload)));
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SynopsisCodecStructure, NonIncreasingWaveletIndicesAreRejected) {
  // Transform 4 (width 2): packed indices {2, 1} = 0b0110.
  std::string payload = Varint(4) + Varint(4) + Varint(2);
  payload.push_back('\x06');
  payload.append(16, '\0');
  auto decoded = DecodeWavelet(AsBytes(FrameRaw(2, payload)));
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SynopsisCodecStructure, NonzeroPaddingBitsAreRejected) {
  // Transform 4 (width 2), one index (0): the packed byte has 6 padding
  // bits that must be zero; set one.
  std::string payload = Varint(4) + Varint(4) + Varint(1);
  payload.push_back('\x04');
  payload.append(8, '\0');
  auto decoded = DecodeWavelet(AsBytes(FrameRaw(2, payload)));
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SynopsisCodecStructure, TrailingPayloadBytesAreRejected) {
  std::string payload = Varint(2) + Varint(1) + Varint(2);
  payload.append(8, '\0');
  payload.push_back('\0');  // one byte past the declared structure
  auto decoded = DecodeHistogram(AsBytes(FrameRaw(1, payload)));
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// --- Fault injection: the decode path is a campaign site. -------------------

TEST(SynopsisCodecFaults, DecodeHonorsPdataReadSite) {
  auto blob = EncodeHistogram(GoldenHistogram());
  ASSERT_TRUE(blob.ok());
  std::uint64_t fired_before = FaultInjectionFiredCount();
  {
    ScopedFaultInjection faults(
        {.seed = 7, .rate = 1.0, .only_site = FaultSite::kPdataRead});
    auto decoded = DecodeHistogram(AsBytes(*blob));
    EXPECT_FALSE(decoded.ok());
    auto wave = DecodeWavelet(AsBytes(*blob));
    EXPECT_FALSE(wave.ok());
  }
  EXPECT_GT(FaultInjectionFiredCount(), fired_before);
  // Disarmed again: the same blob decodes.
  EXPECT_TRUE(DecodeHistogram(AsBytes(*blob)).ok());
}

}  // namespace
}  // namespace probsyn
