#include "model/tuple_pdf.h"

#include <gtest/gtest.h>

#include "model/basic.h"
#include "test_util.h"

namespace probsyn {
namespace {

TEST(ProbTuple, CreateSortsAndMerges) {
  auto t = ProbTuple::Create({{5, 0.2}, {1, 0.3}, {5, 0.1}});
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->size(), 2u);
  EXPECT_EQ(t->alternatives()[0].item, 1u);
  EXPECT_DOUBLE_EQ(t->alternatives()[0].probability, 0.3);
  EXPECT_EQ(t->alternatives()[1].item, 5u);
  EXPECT_DOUBLE_EQ(t->alternatives()[1].probability, 0.3);
  EXPECT_NEAR(t->ProbAbsent(), 0.4, 1e-12);
}

TEST(ProbTuple, CreateRejectsMassOverOne) {
  EXPECT_FALSE(ProbTuple::Create({{0, 0.6}, {1, 0.6}}).ok());
}

TEST(ProbTuple, CreateRejectsNegativeProbability) {
  EXPECT_FALSE(ProbTuple::Create({{0, -0.1}}).ok());
}

TEST(ProbTuple, RangeProbabilities) {
  auto t = ProbTuple::Create({{1, 0.2}, {3, 0.3}, {6, 0.4}});
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->ProbItem(1), 0.2);
  EXPECT_DOUBLE_EQ(t->ProbItem(2), 0.0);
  EXPECT_DOUBLE_EQ(t->ProbItemAtMost(0), 0.0);
  EXPECT_DOUBLE_EQ(t->ProbItemAtMost(1), 0.2);
  EXPECT_DOUBLE_EQ(t->ProbItemAtMost(5), 0.5);
  EXPECT_DOUBLE_EQ(t->ProbItemAtMost(6), 0.9);
  EXPECT_NEAR(t->ProbItemInRange(2, 6), 0.7, 1e-12);
  EXPECT_NEAR(t->ProbItemInRange(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(t->ProbItemInRange(3, 3), 0.3, 1e-12);
}

TEST(TuplePdfInput, PaperExampleMoments) {
  // Section 3.1 worked example: E[g_i^2] summed over the bucket {0,1,2} is
  // 252/144, and E[(sum g)^2] = 136/48.
  TuplePdfInput input = testing::PaperExampleTuplePdf();
  ASSERT_TRUE(input.Validate().ok());

  auto mean = input.ExpectedFrequencies();
  EXPECT_NEAR(mean[0], 1.0 / 2, 1e-12);
  EXPECT_NEAR(mean[1], 1.0 / 3 + 1.0 / 4, 1e-12);
  EXPECT_NEAR(mean[2], 1.0 / 2, 1e-12);

  auto second = input.FrequencySecondMoments();
  EXPECT_NEAR(second[0] + second[1] + second[2], 252.0 / 144, 1e-12);
}

TEST(TuplePdfInput, ValidateCatchesOutOfDomainItems) {
  auto t = ProbTuple::Create({{7, 0.5}});
  ASSERT_TRUE(t.ok());
  TuplePdfInput input(3, {t.value()});
  EXPECT_FALSE(input.Validate().ok());
  EXPECT_EQ(input.Validate().code(), StatusCode::kOutOfRange);
}

TEST(TuplePdfInput, ValidateCatchesEmptyTuple) {
  TuplePdfInput input(3, {ProbTuple()});
  EXPECT_FALSE(input.Validate().ok());
}

TEST(TuplePdfInput, PerItemTupleProbs) {
  TuplePdfInput input = testing::PaperExampleTuplePdf();
  auto per_item = input.PerItemTupleProbs();
  ASSERT_EQ(per_item.size(), 3u);
  ASSERT_EQ(per_item[0].size(), 1u);
  ASSERT_EQ(per_item[1].size(), 2u);
  ASSERT_EQ(per_item[2].size(), 1u);
  EXPECT_DOUBLE_EQ(per_item[1][0] + per_item[1][1], 1.0 / 3 + 1.0 / 4);
}

TEST(BasicModel, ValidateAndEmbed) {
  BasicModelInput basic = testing::PaperExampleBasic();
  ASSERT_TRUE(basic.Validate().ok());
  auto tuple_pdf = basic.ToTuplePdf();
  ASSERT_TRUE(tuple_pdf.ok());
  EXPECT_EQ(tuple_pdf->num_tuples(), 4u);
  // The embedding preserves all expected frequencies.
  auto mean = tuple_pdf->ExpectedFrequencies();
  EXPECT_NEAR(mean[0], 0.5, 1e-12);
  EXPECT_NEAR(mean[1], 1.0 / 3 + 1.0 / 4, 1e-12);
  EXPECT_NEAR(mean[2], 0.5, 1e-12);
}

TEST(BasicModel, ValidateRejectsBadProbability) {
  BasicModelInput input(2, {{0, 1.5}});
  EXPECT_FALSE(input.Validate().ok());
  BasicModelInput zero(2, {{0, 0.0}});
  EXPECT_FALSE(zero.Validate().ok());
}

TEST(BasicModel, ValidateRejectsOutOfDomain) {
  BasicModelInput input(2, {{5, 0.5}});
  EXPECT_EQ(input.Validate().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace probsyn
