#include "core/haar.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/math.h"
#include "util/random.h"

namespace probsyn {
namespace {

TEST(Haar, RoundTripIsExact) {
  Rng rng(5);
  for (std::size_t n : {1u, 2u, 4u, 8u, 64u, 256u}) {
    std::vector<double> data(n);
    for (double& d : data) d = rng.NextUniform(-10, 10);
    std::vector<double> coeffs = HaarTransform(data);
    std::vector<double> back = HaarInverse(coeffs);
    ASSERT_EQ(back.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back[i], data[i], 1e-10) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Haar, ParsevalHolds) {
  Rng rng(6);
  std::vector<double> data(128);
  for (double& d : data) d = rng.NextUniform(-3, 3);
  std::vector<double> coeffs = HaarTransform(data);
  double energy_data = 0, energy_coeffs = 0;
  for (double d : data) energy_data += d * d;
  for (double c : coeffs) energy_coeffs += c * c;
  EXPECT_NEAR(energy_data, energy_coeffs, 1e-9);
}

TEST(Haar, PaperFigureOneExample) {
  // A = [2, 2, 0, 2, 3, 5, 4, 4]: the paper's unnormalized coefficients
  // are [11/4, -5/4, 1/2, 0, 0, -1, -1, 0]; our orthonormal coefficients
  // are those scaled by sqrt(support size / ... ): c0 = avg * sqrt(8),
  // detail at level l scaled by sqrt(2^l... verify via reconstruction
  // instead, plus the two hand-checkable entries.
  std::vector<double> data{2, 2, 0, 2, 3, 5, 4, 4};
  std::vector<double> coeffs = HaarTransform(data);
  // c0 (orthonormal) = sum / sqrt(8) = 22 / sqrt(8) = avg * sqrt(8).
  EXPECT_NEAR(coeffs[0], 22.0 / std::sqrt(8.0), 1e-12);
  // Paper: unnormalized c1 = -5/4; orthonormal = -5/4 * sqrt(8)/2... check
  // via definition: (avgL - avgR)/2 * ... simplest: c1 = (sumL - sumR)/sqrt(8).
  EXPECT_NEAR(coeffs[1], (2 + 2 + 0 + 2 - 3 - 5 - 4 - 4) / std::sqrt(8.0),
              1e-12);
  // The paper's c3 = 0 (its tree position corresponds to our index 3).
  EXPECT_NEAR(coeffs[3], 0.0, 1e-12);
}

TEST(Haar, SingleElement) {
  std::vector<double> data{5.0};
  std::vector<double> coeffs = HaarTransform(data);
  ASSERT_EQ(coeffs.size(), 1u);
  EXPECT_DOUBLE_EQ(coeffs[0], 5.0);
  EXPECT_DOUBLE_EQ(HaarInverse(coeffs)[0], 5.0);
}

TEST(Haar, PadToPowerOfTwo) {
  std::vector<double> data{1, 2, 3};
  std::vector<double> padded = PadToPowerOfTwo(data);
  ASSERT_EQ(padded.size(), 4u);
  EXPECT_DOUBLE_EQ(padded[2], 3.0);
  EXPECT_DOUBLE_EQ(padded[3], 0.0);

  std::vector<double> exact{1, 2};
  EXPECT_EQ(PadToPowerOfTwo(exact).size(), 2u);
}

TEST(Haar, CoefficientLevels) {
  EXPECT_EQ(CoefficientLevel(0), 0u);
  EXPECT_EQ(CoefficientLevel(1), 0u);
  EXPECT_EQ(CoefficientLevel(2), 1u);
  EXPECT_EQ(CoefficientLevel(3), 1u);
  EXPECT_EQ(CoefficientLevel(4), 2u);
  EXPECT_EQ(CoefficientLevel(7), 2u);
}

TEST(Haar, CoefficientSupports) {
  // n = 8: index 1 spans all; index 2 spans [0,4); index 7 spans [6,8).
  SupportRange r0 = CoefficientSupport(0, 8);
  EXPECT_EQ(r0.lo, 0u);
  EXPECT_EQ(r0.hi, 8u);
  SupportRange r2 = CoefficientSupport(2, 8);
  EXPECT_EQ(r2.lo, 0u);
  EXPECT_EQ(r2.hi, 4u);
  SupportRange r7 = CoefficientSupport(7, 8);
  EXPECT_EQ(r7.lo, 6u);
  EXPECT_EQ(r7.hi, 8u);
}

TEST(Haar, LeafContributionScalesMatchBasisAmplitudes) {
  // Transform the indicator of coefficient k and compare leaf values.
  const std::size_t n = 16;
  for (std::size_t k : {0u, 1u, 2u, 5u, 8u, 15u}) {
    std::vector<double> coeffs(n, 0.0);
    coeffs[k] = 1.0;
    std::vector<double> leaf = HaarInverse(coeffs);
    SupportRange r = CoefficientSupport(k, n);
    double scale = LeafContributionScale(k, n);
    for (std::size_t i = 0; i < n; ++i) {
      if (i < r.lo || i >= r.hi) {
        EXPECT_NEAR(leaf[i], 0.0, 1e-12);
      } else if (k == 0 || i < (r.lo + r.hi) / 2) {
        EXPECT_NEAR(leaf[i], scale, 1e-12) << "k=" << k << " i=" << i;
      } else {
        EXPECT_NEAR(leaf[i], -scale, 1e-12) << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST(Haar, ReconstructPointSparseMatchesDenseInverse) {
  Rng rng(17);
  const std::size_t n = 32;
  std::vector<double> data(n);
  for (double& d : data) d = rng.NextUniform(0, 5);
  std::vector<double> coeffs = HaarTransform(data);

  // Keep an arbitrary subset of coefficients.
  std::vector<std::size_t> indices{0, 1, 3, 8, 21, 31};
  std::vector<double> values;
  std::vector<double> dense(n, 0.0);
  for (std::size_t idx : indices) {
    values.push_back(coeffs[idx]);
    dense[idx] = coeffs[idx];
  }
  std::vector<double> expected = HaarInverse(dense);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ReconstructPointSparse(indices, values, i, n), expected[i],
                1e-10)
        << "i=" << i;
  }
}

}  // namespace
}  // namespace probsyn
