// Quickstart: build histogram and wavelet synopses over a tiny uncertain
// relation in the value-pdf model, inspect them, and answer a range query.
//
//   $ ./examples/quickstart
//
// Mirrors the paper's running setting (section 2): each item of an ordered
// domain carries a discrete pdf over frequencies; the synopses minimize
// *expected* error over all possible worlds. Both synopses are served by
// the SynopsisEngine facade — one request type for every construction
// path (exact/approximate/streaming histograms, all wavelet DPs).
//
// Expected output: the optimal 3-bucket SSE histogram (buckets [0,0],
// [1,3], [4,7] — the low/high frequency regions — with expected SSE
// ~23.99), a 3-term SSE wavelet synopsis (expected SSE ~24.15), and a
// range-count estimate for items 4..7 where both synopses recover the
// exact expectation (34.3). Each result line prints the engine's solver
// route, e.g. "histogram/exact-dp[kernel=sse-moment,sequential]".

#include <cstdio>

#include "engine/synopsis_engine.h"
#include "model/value_pdf.h"

using namespace probsyn;

int main() {
  // An 8-item uncertain frequency distribution. Items 0-3 are a noisy
  // low-frequency region; items 4-7 a high-frequency region; item 5 is
  // wildly uncertain.
  std::vector<ValuePdf> items;
  bool bad_input = false;
  auto add = [&](std::vector<ValueProb> entries) {
    auto pdf = ValuePdf::Create(std::move(entries));
    if (!pdf.ok()) {
      std::fprintf(stderr, "bad pdf: %s\n", pdf.status().ToString().c_str());
      bad_input = true;
      return;
    }
    items.push_back(std::move(pdf).value());
  };
  add({{1.0, 0.9}});                       // ~1
  add({{1.0, 0.5}, {2.0, 0.5}});           // 1 or 2
  add({{2.0, 0.8}, {3.0, 0.1}});           // mostly 2 (10% absent)
  add({{1.0, 0.6}, {2.0, 0.4}});
  add({{8.0, 0.7}, {9.0, 0.3}});           // high region
  add({{2.0, 0.3}, {9.0, 0.4}, {14.0, 0.3}});  // highly uncertain
  add({{9.0, 0.9}, {10.0, 0.1}});
  add({{8.0, 0.5}, {9.0, 0.5}});
  if (bad_input) return 1;
  ValuePdfInput input(std::move(items));

  SynopsisEngine engine;

  // --- Histogram synopsis: 3 buckets, expected sum-squared error. -------
  SynopsisRequest hist_request;
  hist_request.kind = SynopsisKind::kHistogram;
  hist_request.budget = 3;
  hist_request.options.metric = ErrorMetric::kSse;
  hist_request.options.sse_variant = SseVariant::kFixedRepresentative;

  auto hist = engine.Build(input, hist_request);
  if (!hist.ok()) {
    std::fprintf(stderr, "histogram failed: %s\n",
                 hist.status().ToString().c_str());
    return 1;
  }
  std::printf("Optimal 3-bucket SSE histogram (%s):\n%s",
              hist->solver.c_str(), hist->histogram.ToString().c_str());
  std::printf("expected SSE over all possible worlds: %.4f\n\n", hist->cost);

  // --- Wavelet synopsis: 3 coefficients, expected SSE (Theorem 7). ------
  SynopsisRequest wave_request;
  wave_request.kind = SynopsisKind::kWavelet;
  wave_request.budget = 3;
  wave_request.options = hist_request.options;

  auto wave = engine.Build(input, wave_request);
  if (!wave.ok()) {
    std::fprintf(stderr, "wavelet failed: %s\n",
                 wave.status().ToString().c_str());
    return 1;
  }
  std::printf("Optimal 3-term SSE wavelet synopsis (%s):\n%s",
              wave->solver.c_str(), wave->wavelet.ToString().c_str());
  std::printf("expected SSE over all possible worlds: %.4f\n\n", wave->cost);

  // --- Approximate query answering. --------------------------------------
  // Expected count of items 4..7 under the true distribution vs synopses.
  double truth = 0.0;
  auto means = input.ExpectedFrequencies();
  for (std::size_t i = 4; i <= 7; ++i) truth += means[i];
  std::printf("range-count(4..7): exact expectation %.3f | histogram %.3f | "
              "wavelet %.3f\n",
              truth, hist->histogram.EstimateRangeSum(4, 7),
              wave->wavelet.EstimateRangeSum(4, 7));
  return 0;
}
