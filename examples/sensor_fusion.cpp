// Sensor fusion: summarizing noisy multi-sensor readings with relative-
// error histograms — the pervasive-computing motivation from the paper's
// introduction ("pervasive multi-sensor computing applications need to
// routinely handle noisy sensor/RFID readings").
//
// Scenario: n sensors along a pipeline each report a discretized reading;
// transmission noise makes the reading uncertain, so the gateway stores a
// per-sensor pdf (value-pdf model). We build a B-bucket SARE-optimal
// histogram as the gateway's compact state, compare it against the two
// naive baselines, and show the max-error (MARE) histogram's per-item
// guarantee.
//
//   $ ./examples/sensor_fusion [n] [buckets]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/baselines.h"
#include "core/builders.h"
#include "core/evaluate.h"
#include "core/oracle_factory.h"
#include "model/value_pdf.h"
#include "util/random.h"

using namespace probsyn;

namespace {

// A sensor's true level, discretized; the pdf spreads mass around it to
// model quantization + transmission noise, heavier in "turbulent" zones.
ValuePdfInput SimulateSensors(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ValuePdf> sensors;
  sensors.reserve(n);
  double level = 20.0;
  bool turbulent = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.02)) level = rng.NextUniform(5.0, 60.0);
    if (rng.NextBernoulli(0.05)) turbulent = !turbulent;
    level += rng.NextGaussian() * 0.4;
    double base = std::max(0.0, level);
    double rounded = static_cast<double>(static_cast<long>(base));

    // Dropped packets are filled by the gateway with the held reading, so
    // all mass stays near the true level (an absent-as-zero model would
    // make 0 the SARE-optimal representative for small c — see the paper's
    // discussion of the sanity constant).
    std::vector<ValueProb> entries;
    if (turbulent) {
      entries = {{rounded, 0.5},
                 {rounded + 2.0, 0.25},
                 {std::max(0.0, rounded - 2.0), 0.25}};
    } else {
      entries = {{rounded, 0.9}, {rounded + 1.0, 0.1}};
    }
    auto pdf = ValuePdf::Create(std::move(entries));
    if (!pdf.ok()) std::abort();
    sensors.push_back(std::move(pdf).value());
  }
  return ValuePdfInput(std::move(sensors));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  std::size_t buckets = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 12;
  ValuePdfInput sensors = SimulateSensors(n, /*seed=*/2024);

  SynopsisOptions options;
  options.metric = ErrorMetric::kSare;
  options.sanity_c = 1.0;

  auto builder = HistogramBuilder::Create(sensors, options, buckets);
  if (!builder.ok()) {
    std::fprintf(stderr, "%s\n", builder.status().ToString().c_str());
    return 1;
  }
  ErrorScale scale = ComputeErrorScale(builder->oracle(), true);
  Histogram prob = builder->Extract(buckets);

  Rng rng(7);
  auto expectation = BuildExpectationHistogram(sensors, options, buckets);
  auto sampled = BuildSampledWorldHistogram(sensors, options, buckets, rng);
  if (!expectation.ok() || !sampled.ok()) return 1;

  auto cost_prob = EvaluateHistogram(sensors, prob, options);
  auto cost_exp = EvaluateHistogram(sensors, expectation.value(), options);
  auto cost_smp = EvaluateHistogram(sensors, sampled.value(), options);

  std::printf("SARE-optimal histogram over %zu sensors, B = %zu\n", n,
              buckets);
  std::printf("  %-28s %12s %9s\n", "method", "expected SARE", "error%%");
  std::printf("  %-28s %12.4f %8.2f%%\n", "probabilistic (this paper)",
              *cost_prob, scale.Percent(*cost_prob));
  std::printf("  %-28s %12.4f %8.2f%%\n", "expectation baseline", *cost_exp,
              scale.Percent(*cost_exp));
  std::printf("  %-28s %12.4f %8.2f%%\n", "sampled-world baseline", *cost_smp,
              scale.Percent(*cost_smp));

  // Max-error variant: per-sensor guarantee for alarm thresholds.
  SynopsisOptions max_options;
  max_options.metric = ErrorMetric::kMare;
  max_options.sanity_c = 1.0;
  auto guard = BuildOptimalHistogram(sensors, max_options, buckets);
  if (!guard.ok()) return 1;
  auto worst = EvaluateHistogram(sensors, guard.value(), max_options);
  std::printf(
      "\nMARE-optimal histogram bounds every sensor's expected relative "
      "error by %.4f\n",
      *worst);

  // Gateway query: expected total level in a zone.
  std::size_t zone_lo = n / 4, zone_hi = n / 2;
  double truth = 0.0;
  auto means = sensors.ExpectedFrequencies();
  for (std::size_t i = zone_lo; i <= zone_hi; ++i) truth += means[i];
  std::printf("\nzone [%zu, %zu] expected total: exact %.2f, histogram %.2f\n",
              zone_lo, zone_hi, truth, prob.EstimateRangeSum(zone_lo, zone_hi));
  return 0;
}
