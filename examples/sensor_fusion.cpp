// Sensor fusion: summarizing noisy multi-sensor readings with relative-
// error histograms — the pervasive-computing motivation from the paper's
// introduction ("pervasive multi-sensor computing applications need to
// routinely handle noisy sensor/RFID readings").
//
// Scenario: n sensors along a pipeline each report a discretized reading;
// transmission noise makes the reading uncertain, so the gateway stores a
// per-sensor pdf (value-pdf model). One SynopsisEngine batch builds the
// SARE-optimal histogram, the two naive baselines, and the max-error
// (MARE) guard histogram — the SARE requests share one preprocessed
// oracle inside the engine.
//
//   $ ./examples/sensor_fusion [n] [buckets]
//
// Expected output: a three-row method table (probabilistic / expectation
// baseline / sampled-world baseline) of expected SARE and the paper's
// error% measure, with the probabilistic histogram strictly best (e.g. at
// n=64, B=8: ~1.6 SARE vs ~1.7 and ~2.1 for the baselines); then the
// MARE guard bound on every sensor's expected relative error, and a
// zone-total sanity query against the exact expectation.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/evaluate.h"
#include "engine/synopsis_engine.h"
#include "model/value_pdf.h"
#include "util/random.h"

using namespace probsyn;

namespace {

// A sensor's true level, discretized; the pdf spreads mass around it to
// model quantization + transmission noise, heavier in "turbulent" zones.
ValuePdfInput SimulateSensors(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ValuePdf> sensors;
  sensors.reserve(n);
  double level = 20.0;
  bool turbulent = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.02)) level = rng.NextUniform(5.0, 60.0);
    if (rng.NextBernoulli(0.05)) turbulent = !turbulent;
    level += rng.NextGaussian() * 0.4;
    double base = std::max(0.0, level);
    double rounded = static_cast<double>(static_cast<long>(base));

    // Dropped packets are filled by the gateway with the held reading, so
    // all mass stays near the true level (an absent-as-zero model would
    // make 0 the SARE-optimal representative for small c — see the paper's
    // discussion of the sanity constant).
    std::vector<ValueProb> entries;
    if (turbulent) {
      entries = {{rounded, 0.5},
                 {rounded + 2.0, 0.25},
                 {std::max(0.0, rounded - 2.0), 0.25}};
    } else {
      entries = {{rounded, 0.9}, {rounded + 1.0, 0.1}};
    }
    // StatusOr::value() aborts with the status message if Create failed
    // (hardened in every build type), so no manual ok() check is needed
    // for this can't-fail constant input.
    sensors.push_back(ValuePdf::Create(std::move(entries)).value());
  }
  return ValuePdfInput(std::move(sensors));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  std::size_t buckets = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 12;
  ValuePdfInput sensors = SimulateSensors(n, /*seed=*/2024);

  SynopsisOptions options;
  options.metric = ErrorMetric::kSare;
  options.sanity_c = 1.0;

  // One batch: the SARE-optimal histogram, the two baselines, the MARE
  // guard, and the 1-bucket / n-bucket SARE optima that anchor the
  // paper's error% scale. The three SARE exact-DP requests (0, 4, 5)
  // share one preprocessed oracle and one DP inside the engine; the
  // baselines route through their own deterministic builders.
  SynopsisEngine engine;
  std::vector<SynopsisRequest> requests(6);
  requests[0].budget = buckets;
  requests[0].options = options;
  requests[1] = requests[0];
  requests[1].method = HistogramMethod::kExpectation;
  requests[2] = requests[0];
  requests[2].method = HistogramMethod::kSampledWorld;
  requests[2].seed = 7;
  requests[3].budget = buckets;
  requests[3].options.metric = ErrorMetric::kMare;
  requests[3].options.sanity_c = 1.0;
  requests[4] = requests[0];
  requests[4].budget = 1;  // worst achievable cost
  requests[5] = requests[0];
  requests[5].budget = n;  // best achievable cost

  auto batch = engine.BuildBatch(sensors, requests);
  if (!batch.ok()) {
    std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
    return 1;
  }
  const SynopsisResult& prob = (*batch)[0];
  const SynopsisResult& expectation = (*batch)[1];
  const SynopsisResult& sampled = (*batch)[2];
  const SynopsisResult& guard = (*batch)[3];

  // The paper's error% normalization between the 1-bucket and n-bucket
  // optima — both already solved by the shared DP above.
  ErrorScale scale{(*batch)[4].cost, (*batch)[5].cost};

  // The optimal route reports the oracle cost; re-cost it the same way as
  // the baselines so the comparison uses one evaluator.
  auto cost_prob = EvaluateHistogram(sensors, prob.histogram, options);
  if (!cost_prob.ok()) {
    std::fprintf(stderr, "%s\n", cost_prob.status().ToString().c_str());
    return 1;
  }

  std::printf("SARE-optimal histogram over %zu sensors, B = %zu (%s)\n", n,
              buckets, prob.solver.c_str());
  std::printf("  %-28s %12s %9s\n", "method", "expected SARE", "error%%");
  std::printf("  %-28s %12.4f %8.2f%%\n", "probabilistic (this paper)",
              *cost_prob, scale.Percent(*cost_prob));
  std::printf("  %-28s %12.4f %8.2f%%\n", "expectation baseline",
              expectation.cost, scale.Percent(expectation.cost));
  std::printf("  %-28s %12.4f %8.2f%%\n", "sampled-world baseline",
              sampled.cost, scale.Percent(sampled.cost));

  // Max-error variant: per-sensor guarantee for alarm thresholds.
  std::printf(
      "\nMARE-optimal histogram bounds every sensor's expected relative "
      "error by %.4f\n",
      guard.cost);

  // Gateway query: expected total level in a zone.
  std::size_t zone_lo = n / 4, zone_hi = n / 2;
  double truth = 0.0;
  auto means = sensors.ExpectedFrequencies();
  for (std::size_t i = zone_lo; i <= zone_hi; ++i) truth += means[i];
  std::printf("\nzone [%zu, %zu] expected total: exact %.2f, histogram %.2f\n",
              zone_lo, zone_hi, truth,
              prob.histogram.EstimateRangeSum(zone_lo, zone_hi));
  return 0;
}
