// Sharded synopsis construction: build a 64-bucket approximate histogram
// over a MILLION-item uncertain domain — the regime where the unsharded
// DP solvers stop being feasible (the n = 1e5 unsharded approximate solve
// already runs ~40 s on one core; n = 1e6 extrapolates to tens of
// minutes). The engine's sharded backend (core/sharded_dp.h) splits the
// domain into contiguous shards, solves each shard's DP concurrently on
// the engine pool, and reassembles with a cross-shard budget-allocation
// DP — the n = 1e6 build below completes in a few hundred milliseconds.
//
//   $ ./examples/sharded_synopsis
//
// Expected output: the auto-sharded n = 1e6 approximate build reporting a
// solver route like
//
//   histogram/sharded-approx(eps=0.1)[kernel=sse-moment,simd=avx512,shards=64,par=4]
//
// with a total time on the order of hundreds of milliseconds (vs minutes
// unsharded), followed by an explicitly opted-in (RequestSharding::Mode::kOn)
// sharded EXACT build at n = 1e5 — "histogram/sharded-dp[...]" — showing
// the accuracy contract: the sharded cost is never below the unsharded
// optimum, and the gap (here a few percent) buys orders of magnitude of
// wall clock. A final build demonstrates deadline-aware degradation: the
// same n = 1e6 request under a 5 ms deadline with
// RequestFallback::kDegrade serves a truthfully re-costed equi-depth
// histogram whose solver string records "[degraded=approx-dp->equidepth]"
// instead of failing with kDeadlineExceeded.

#include <cstdio>

#include "engine/synopsis_engine.h"
#include "gen/generators.h"
#include "model/value_pdf.h"
#include "util/deadline.h"

using namespace probsyn;

namespace {

void Report(const char* label, const SynopsisResult& result) {
  std::printf("%-28s %s\n", label, result.solver.c_str());
  std::printf("%-28s buckets=%zu cost=%.6g total=%.3fs (plan=%.3fs "
              "preprocess=%.3fs solve=%.3fs)\n\n",
              "", result.histogram.num_buckets(), result.cost,
              result.timing.total_seconds(), result.timing.plan_seconds,
              result.timing.preprocess_seconds, result.timing.solve_seconds);
}

Status Run() {
  // A million-item uncertain frequency distribution (each item a small
  // discrete pdf over integer frequencies) — far past shard_auto_domain,
  // so plain kApprox requests route to the sharded backend automatically.
  std::printf("generating n = 1e6 uncertain items...\n");
  ValuePdfInput large = GenerateRandomValuePdf(
      {.domain_size = 1000000, .max_support = 4, .max_value = 8,
       .seed = 20090401});

  SynopsisEngine engine(SynopsisEngine::Options{.parallelism = 4});

  SynopsisRequest request;
  request.kind = SynopsisKind::kHistogram;
  request.method = HistogramMethod::kApprox;
  request.budget = 64;
  request.epsilon = 0.1;
  request.options.metric = ErrorMetric::kSse;
  request.options.sse_variant = SseVariant::kFixedRepresentative;

  // 1) Auto-sharded approximate build at n = 1e6. RequestSharding defaults
  //    to Mode::kAuto: the domain exceeds Options::shard_auto_domain, so
  //    the planner shards (S resolves to 64 here) without being asked.
  PROBSYN_ASSIGN_OR_RETURN(SynopsisResult approx, engine.Build(large, request));
  Report("approx, n=1e6, auto-shard:", approx);

  // 2) Explicitly opted-in sharded EXACT build at n = 1e5. kOptimal never
  //    auto-shards (it would silently trade away the optimality
  //    guarantee); Mode::kOn is the informed-consent switch. The result
  //    costs at least the unsharded optimum — exactly it whenever some
  //    optimal histogram breaks at every shard boundary — and the
  //    differential sweep in tests/sharded_dp_test.cc pins the measured
  //    envelope.
  std::printf("generating n = 1e5 uncertain items...\n");
  ValuePdfInput medium = GenerateRandomValuePdf(
      {.domain_size = 100000, .max_support = 4, .max_value = 8,
       .seed = 20090401});
  request.method = HistogramMethod::kOptimal;
  request.sharding.mode = RequestSharding::Mode::kOn;
  request.sharding.shards = 64;
  PROBSYN_ASSIGN_OR_RETURN(SynopsisResult exact, engine.Build(medium, request));
  Report("exact, n=1e5, shards=64:", exact);

  // 3) Deadline-aware degradation at n = 1e6. A 5 ms deadline cannot fit
  //    even the sharded approximate build, so under RequestFallback::kNone
  //    this request would fail with kDeadlineExceeded; with kDegrade the
  //    engine's planner falls down the degradation ladder and serves
  //    equi-depth boundaries (linear time), truthfully re-costed, with the
  //    detour recorded in the solver string.
  request.method = HistogramMethod::kApprox;
  request.sharding = RequestSharding{};
  request.deadline = Deadline::After(0.005);
  request.fallback = RequestFallback::kDegrade;
  PROBSYN_ASSIGN_OR_RETURN(SynopsisResult degraded,
                           engine.Build(large, request));
  Report("approx, n=1e6, 5ms budget:", degraded);
  return Status::OK();
}

}  // namespace

int main() {
  if (Status status = Run(); !status.ok()) {
    std::fprintf(stderr, "sharded_synopsis failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
