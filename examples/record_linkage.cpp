// Record linkage: the paper's flagship scenario (its real data set links a
// movie database to an e-commerce inventory; each item's tuples are
// candidate matches with confidence probabilities — the basic model).
//
// This example runs the full pipeline the paper's section 5 evaluates:
//   1. generate linkage data in the basic model (MystiQ stand-in),
//   2. embed into the tuple-pdf model and persist it as .pdata,
//   3. build SSRE-optimal histograms (probabilistic vs the two baselines)
//      through one SynopsisEngine batch and report the paper's error%
//      measure,
//   4. build the SSE-optimal wavelet synopsis and its sampled baseline,
//   5. export the winning synopses as CSV.
//
//   $ ./examples/record_linkage [n] [buckets] [out_dir]
//
// Expected output: the generated linkage corpus size (items and candidate
// match tuples), the section-5 quality table — SSRE error% for the
// probabilistic histogram vs the expectation and sampled-world baselines,
// probabilistic lowest — the SSE wavelet comparison, and the paths of the
// persisted .pdata file and exported CSV synopses under [out_dir] (file
// writes report a Status error and the run continues if out_dir is not
// writable).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/baselines.h"
#include "core/evaluate.h"
#include "engine/synopsis_engine.h"
#include "gen/generators.h"
#include "io/pdata.h"

using namespace probsyn;

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 512;
  std::size_t buckets = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 24;
  std::string out_dir = argc > 3 ? argv[3] : "/tmp";

  // 1-2. Generate and persist.
  BasicModelInput linkage =
      GenerateMovieLinkage({.domain_size = n, .seed = 20090329});
  std::printf("movie-linkage data: %zu items, %zu match tuples\n", n,
              linkage.num_tuples());
  std::string pdata_path = out_dir + "/record_linkage.pdata";
  if (Status s = SaveBasicModel(pdata_path, linkage); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto tuple_pdf = linkage.ToTuplePdf();
  if (!tuple_pdf.ok()) {
    std::fprintf(stderr, "embed failed: %s\n",
                 tuple_pdf.status().ToString().c_str());
    return 1;
  }

  // 3. Histograms under SSRE (c = 0.5), the paper's headline metric: one
  // engine batch — the optimal histogram, the two baselines, and the
  // 1-bucket / n-bucket optima anchoring the error% scale. The exact-DP
  // requests (indices 0, 5, 6) share one preprocessed SSRE oracle and one
  // DP; the baselines run their own deterministic builders.
  SynopsisOptions options;
  options.metric = ErrorMetric::kSsre;
  options.sanity_c = 0.5;

  SynopsisEngine engine;
  std::vector<SynopsisRequest> requests;
  {
    SynopsisRequest base;
    base.budget = buckets;
    base.options = options;
    requests.push_back(base);  // optimal
    base.method = HistogramMethod::kExpectation;
    requests.push_back(base);
    base.method = HistogramMethod::kSampledWorld;
    for (std::uint64_t seed : {5u, 6u, 7u}) {
      base.seed = seed;
      requests.push_back(base);
    }
    base.method = HistogramMethod::kOptimal;
    base.budget = 1;  // worst achievable cost
    requests.push_back(base);
    base.budget = n;  // best achievable cost
    requests.push_back(base);
  }
  auto batch = engine.BuildBatch(tuple_pdf.value(), requests);
  if (!batch.ok()) {
    std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
    return 1;
  }

  ErrorScale scale{(*batch)[5].cost, (*batch)[6].cost};
  const Histogram& prob = (*batch)[0].histogram;

  std::printf("\nSSRE histograms (B = %zu, c = 0.5)\n", buckets);
  std::printf("  %-28s %14s %9s\n", "method", "expected SSRE", "error%%");
  std::printf("  %-28s %14.4f %8.2f%%\n", "probabilistic (this paper)",
              (*batch)[0].cost, scale.Percent((*batch)[0].cost));
  std::printf("  %-28s %14.4f %8.2f%%\n", "expectation baseline",
              (*batch)[1].cost, scale.Percent((*batch)[1].cost));
  for (int sample = 1; sample <= 3; ++sample) {
    double cost = (*batch)[1 + sample].cost;
    std::printf("  sampled world #%d             %14.4f %8.2f%%\n", sample,
                cost, scale.Percent(cost));
  }

  // 4. Wavelets under expected SSE: engine route vs sampled baseline.
  const std::size_t coeffs = buckets;  // same budget for comparison
  SynopsisRequest wave_request;
  wave_request.kind = SynopsisKind::kWavelet;
  wave_request.budget = coeffs;
  auto wavelet = engine.Build(tuple_pdf.value(), wave_request);
  if (!wavelet.ok()) {
    std::fprintf(stderr, "%s\n", wavelet.status().ToString().c_str());
    return 1;
  }
  Rng wrng(6);
  auto sampled_wavelet =
      BuildSampledWorldWavelet(tuple_pdf.value(), coeffs, wrng);
  if (!sampled_wavelet.ok()) {
    std::fprintf(stderr, "%s\n",
                 sampled_wavelet.status().ToString().c_str());
    return 1;
  }
  std::vector<double> mu =
      ExpectedHaarCoefficients(tuple_pdf->ExpectedFrequencies());
  std::printf("\nSSE wavelets (B = %zu coefficients)\n", coeffs);
  std::printf("  probabilistic: %.2f%% of expected energy missed\n",
              WaveletUnretainedEnergyPercent(mu, wavelet->wavelet));
  std::printf("  sampled world: %.2f%% of expected energy missed\n",
              WaveletUnretainedEnergyPercent(mu, sampled_wavelet.value()));

  // 5. Export.
  std::string hist_csv = out_dir + "/record_linkage_histogram.csv";
  std::string wave_csv = out_dir + "/record_linkage_wavelet.csv";
  std::ofstream hist_os(hist_csv), wave_os(wave_csv);
  if (!WriteHistogramCsv(hist_os, prob).ok() ||
      !WriteWaveletCsv(wave_os, wavelet->wavelet).ok()) {
    std::fprintf(stderr, "CSV export failed\n");
    return 1;
  }
  std::printf("\nwrote %s, %s, %s\n", pdata_path.c_str(), hist_csv.c_str(),
              wave_csv.c_str());
  return 0;
}
