// Record linkage: the paper's flagship scenario (its real data set links a
// movie database to an e-commerce inventory; each item's tuples are
// candidate matches with confidence probabilities — the basic model).
//
// This example runs the full pipeline the paper's section 5 evaluates:
//   1. generate linkage data in the basic model (MystiQ stand-in),
//   2. embed into the tuple-pdf model and persist it as .pdata,
//   3. build SSRE-optimal histograms (probabilistic vs the two baselines)
//      and report the paper's error% measure,
//   4. build the SSE-optimal wavelet synopsis and its sampled baseline,
//   5. export the winning synopses as CSV.
//
//   $ ./examples/record_linkage [n] [buckets] [out_dir]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/baselines.h"
#include "core/builders.h"
#include "core/evaluate.h"
#include "core/oracle_factory.h"
#include "core/wavelet.h"
#include "gen/generators.h"
#include "io/pdata.h"

using namespace probsyn;

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 512;
  std::size_t buckets = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 24;
  std::string out_dir = argc > 3 ? argv[3] : "/tmp";

  // 1-2. Generate and persist.
  BasicModelInput linkage =
      GenerateMovieLinkage({.domain_size = n, .seed = 20090329});
  std::printf("movie-linkage data: %zu items, %zu match tuples\n", n,
              linkage.num_tuples());
  std::string pdata_path = out_dir + "/record_linkage.pdata";
  if (Status s = SaveBasicModel(pdata_path, linkage); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto tuple_pdf = linkage.ToTuplePdf();
  if (!tuple_pdf.ok()) return 1;

  // 3. Histograms under SSRE (c = 0.5), the paper's headline metric.
  SynopsisOptions options;
  options.metric = ErrorMetric::kSsre;
  options.sanity_c = 0.5;

  auto builder = HistogramBuilder::Create(tuple_pdf.value(), options, buckets);
  if (!builder.ok()) {
    std::fprintf(stderr, "%s\n", builder.status().ToString().c_str());
    return 1;
  }
  ErrorScale scale = ComputeErrorScale(builder->oracle(), true);
  Histogram prob = builder->Extract(buckets);
  auto cost_prob = EvaluateHistogram(tuple_pdf.value(), prob, options);

  auto expectation =
      BuildExpectationHistogram(tuple_pdf.value(), options, buckets);
  auto cost_exp =
      EvaluateHistogram(tuple_pdf.value(), expectation.value(), options);

  std::printf("\nSSRE histograms (B = %zu, c = 0.5)\n", buckets);
  std::printf("  %-28s %14s %9s\n", "method", "expected SSRE", "error%%");
  std::printf("  %-28s %14.4f %8.2f%%\n", "probabilistic (this paper)",
              *cost_prob, scale.Percent(*cost_prob));
  std::printf("  %-28s %14.4f %8.2f%%\n", "expectation baseline", *cost_exp,
              scale.Percent(*cost_exp));
  Rng rng(5);
  for (int sample = 1; sample <= 3; ++sample) {
    auto sampled =
        BuildSampledWorldHistogram(tuple_pdf.value(), options, buckets, rng);
    auto cost =
        EvaluateHistogram(tuple_pdf.value(), sampled.value(), options);
    std::printf("  sampled world #%d             %14.4f %8.2f%%\n", sample,
                *cost, scale.Percent(*cost));
  }

  // 4. Wavelets under expected SSE.
  const std::size_t coeffs = buckets;  // same budget for comparison
  auto wavelet = BuildSseOptimalWavelet(tuple_pdf.value(), coeffs);
  Rng wrng(6);
  auto sampled_wavelet =
      BuildSampledWorldWavelet(tuple_pdf.value(), coeffs, wrng);
  if (!wavelet.ok() || !sampled_wavelet.ok()) return 1;
  std::vector<double> mu =
      ExpectedHaarCoefficients(tuple_pdf->ExpectedFrequencies());
  std::printf("\nSSE wavelets (B = %zu coefficients)\n", coeffs);
  std::printf("  probabilistic: %.2f%% of expected energy missed\n",
              WaveletUnretainedEnergyPercent(mu, wavelet.value()));
  std::printf("  sampled world: %.2f%% of expected energy missed\n",
              WaveletUnretainedEnergyPercent(mu, sampled_wavelet.value()));

  // 5. Export.
  std::string hist_csv = out_dir + "/record_linkage_histogram.csv";
  std::string wave_csv = out_dir + "/record_linkage_wavelet.csv";
  std::ofstream hist_os(hist_csv), wave_os(wave_csv);
  if (!WriteHistogramCsv(hist_os, prob).ok() ||
      !WriteWaveletCsv(wave_os, wavelet.value()).ok()) {
    std::fprintf(stderr, "CSV export failed\n");
    return 1;
  }
  std::printf("\nwrote %s, %s, %s\n", pdata_path.c_str(), hist_csv.c_str(),
              wave_csv.c_str());
  return 0;
}
