// Selectivity estimation for a probabilistic query optimizer — the
// "probabilistic query planning and optimization" use the paper's
// introduction motivates, plus its concluding-remarks extension
// (workload-aware synopses).
//
// Scenario: an uncertain relation's key column is summarized once; the
// optimizer then estimates range-predicate selectivities (expected number
// of qualifying tuples) from the synopsis instead of the full pdf set.
// Most queries hit a known hot range, so we also build a workload-aware
// histogram and show its estimates are sharper where it matters.
//
//   $ ./examples/selectivity_estimation [n] [buckets]
//
// Expected output: a per-query table (range, exact expected count,
// uniform-histogram estimate, workload-aware estimate) followed by two
// summary lines — total |estimate - truth| over the workload and the
// weighted expected SSE — where the workload-aware histogram wins on the
// hot ranges (e.g. at the defaults: total error ~5.9 vs ~13.8 uniform).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/evaluate.h"
#include "engine/synopsis_engine.h"
#include "gen/generators.h"
#include "util/random.h"

using namespace probsyn;

namespace {

struct RangeQuery {
  std::size_t lo;
  std::size_t hi;
};

double TrueExpectedCount(const std::vector<double>& mean, RangeQuery q) {
  double total = 0.0;
  for (std::size_t i = q.lo; i <= q.hi; ++i) total += mean[i];
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 512;
  std::size_t buckets = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;

  // Uncertain key column: MayBMS-style tuple pdfs.
  TuplePdfInput relation = GenerateMaybmsTpch(
      {.domain_size = n, .num_tuples = 6 * n, .seed = 314});
  std::vector<double> mean = relation.ExpectedFrequencies();

  // Query workload: 90% of queries touch the hot band [n/2 - n/16, n/2 + n/16).
  std::size_t hot_lo = n / 2 - n / 16, hot_hi = n / 2 + n / 16 - 1;
  std::vector<double> weights(n, 0.1 / static_cast<double>(n));
  for (std::size_t i = hot_lo; i <= hot_hi; ++i) {
    weights[i] = 0.9 / static_cast<double>(hot_hi - hot_lo + 1);
  }

  SynopsisOptions uniform;
  uniform.metric = ErrorMetric::kSse;
  uniform.sse_variant = SseVariant::kFixedRepresentative;
  SynopsisOptions aware = uniform;
  aware.workload = weights;

  // Both histograms come from one engine batch; the workloads differ, so
  // each request plans its own oracle, but the request/result surface and
  // the parallel DP are shared machinery.
  SynopsisEngine engine;
  std::vector<SynopsisRequest> requests(2);
  requests[0].budget = buckets;
  requests[0].options = uniform;
  requests[1].budget = buckets;
  requests[1].options = aware;
  auto batch = engine.BuildBatch(relation, requests);
  if (!batch.ok()) {
    std::fprintf(stderr, "histogram construction failed: %s\n",
                 batch.status().ToString().c_str());
    return 1;
  }
  const Histogram& hist_uniform = (*batch)[0].histogram;
  const Histogram& hist_aware = (*batch)[1].histogram;

  std::printf("selectivity estimates over %zu uncertain keys, B = %zu\n\n", n,
              buckets);
  std::printf("%22s %12s %12s %12s\n", "range", "true E[cnt]",
              "uniform-hist", "workload-hist");

  Rng rng(11);
  double err_uniform = 0.0, err_aware = 0.0;
  int hot_queries = 0;
  for (int q = 0; q < 8; ++q) {
    // Mimic the workload: mostly hot-band queries.
    RangeQuery query;
    if (q < 6) {
      // Hot queries are narrow point-ish lookups — per-item accuracy in
      // the hot band is what the workload-aware histogram optimizes.
      std::size_t a = hot_lo + rng.NextBounded(hot_hi - hot_lo);
      query = {a, std::min(a + rng.NextBounded(4), hot_hi)};
      ++hot_queries;
    } else {
      std::size_t a = rng.NextBounded(n / 2);
      query = {a, a + rng.NextBounded(n - a)};
    }
    double truth = TrueExpectedCount(mean, query);
    double est_u = hist_uniform.EstimateRangeSum(query.lo, query.hi);
    double est_a = hist_aware.EstimateRangeSum(query.lo, query.hi);
    err_uniform += std::fabs(est_u - truth);
    err_aware += std::fabs(est_a - truth);
    std::printf("      [%6zu, %6zu] %12.2f %12.2f %12.2f\n", query.lo,
                query.hi, truth, est_u, est_a);
  }
  std::printf("\ntotal |estimate - truth| over the workload: uniform %.2f, "
              "workload-aware %.2f (%d/8 hot queries)\n",
              err_uniform, err_aware, hot_queries);

  auto cost_u = EvaluateHistogram(relation, hist_uniform, aware);
  auto cost_a = EvaluateHistogram(relation, hist_aware, aware);
  if (!cost_u.ok() || !cost_a.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 (!cost_u.ok() ? cost_u : cost_a).status().ToString().c_str());
    return 1;
  }
  std::printf("weighted expected SSE: uniform %.4f vs workload-aware %.4f\n",
              *cost_u, *cost_a);
  return 0;
}
